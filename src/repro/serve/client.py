"""Minimal blocking ``repro-serve/1`` client (stdlib ``http.client``).

Used by the load-generator bench, the integration tests, and anyone
embedding the daemon.  One :class:`ServeClient` owns one keep-alive
connection and is **not** thread-safe — concurrent load uses one client
per thread (exactly what :mod:`benchmarks.run_serve` does).
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Optional, Tuple

from . import protocol


class ServeClient:
    def __init__(self, host: str, port: int, timeout_s: float = 60.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._conn: Optional[http.client.HTTPConnection] = None

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout_s
            )
        return self._conn

    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> Tuple[int, Dict[str, object]]:
        conn = self._connection()
        try:
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            resp = conn.getresponse()
            payload = json.loads(resp.read().decode("utf-8"))
            return resp.status, payload
        except (http.client.HTTPException, ConnectionError, OSError):
            # One transparent reconnect: the server may have closed an idle
            # keep-alive connection between requests.
            self.close()
            conn = self._connection()
            conn.request(
                method,
                path,
                body=body,
                headers={"Content-Type": "application/json"} if body else {},
            )
            resp = conn.getresponse()
            payload = json.loads(resp.read().decode("utf-8"))
            return resp.status, payload

    def rpc(
        self,
        source: str,
        request_id: object,
        options: Optional[Dict[str, object]] = None,
        chaos: Optional[Dict[str, object]] = None,
    ) -> Tuple[int, Dict[str, object]]:
        """POST one analyze request; returns ``(http_status, envelope)``."""
        params: Dict[str, object] = {"source": source}
        if options:
            params.update(options)
        request: Dict[str, object] = {
            "id": request_id,
            "method": "analyze",
            "params": params,
        }
        if chaos:
            request["chaos"] = chaos
        status, envelope = self._request(
            "POST", "/rpc", json.dumps(request).encode("utf-8")
        )
        if isinstance(envelope, dict) and envelope.get("schema") == protocol.SCHEMA:
            protocol.classify(envelope)  # validates status/code presence
        return status, envelope

    def healthz(self) -> Dict[str, object]:
        status, payload = self._request("GET", "/healthz")
        if status != 200:
            raise RuntimeError(f"/healthz returned {status}: {payload}")
        return payload

    def readyz(self) -> Tuple[int, Dict[str, object]]:
        return self._request("GET", "/readyz")

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            finally:
                self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
