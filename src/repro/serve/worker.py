"""Serve worker: the process-pool half of the daemon.

Each worker is a long-lived child process running :func:`worker_main` — a
loop that receives job dicts over a :class:`multiprocessing.Pipe`, runs
:func:`execute_request`, and sends the result record back.  Two properties
carry the serving story:

* **warm caches** — the worker's process-wide
  :data:`repro.dataflow.cache.GLOBAL_CACHE` persists across requests, so
  a repeat request for an unchanged program is solver-free (the
  ``cache.*`` counters it ships back surface fleet-wide via ``/healthz``).
  Two serve-specific layers make that true under a deadline:
  :func:`_parse_cached` memoizes the parsed AST per source text, so the
  digest-keyed PFG/analyze caches pass their AST-identity validation on
  repeats, and completed records are memoized under the ``serve`` cache
  namespace keyed by source digest **plus** every result-affecting option
  and the served degradation level — the full-result ``analyze`` cache
  deliberately bypasses itself when a budget is armed (a budget asks for
  the work to run under a guard), but a *previously completed* record is
  a valid answer at any deadline, so serving it from cache is sound;
* **never raises** — :func:`execute_request` converts every analysis
  failure into a typed record (the same taxonomy as
  :mod:`repro.batch.driver`); the only way a worker dies is a genuine
  crash (or an injected chaos kill), which the supervisor treats as a
  transport fault: kill, respawn, retry.

Chaos injection (``--chaos`` daemons only): a job's ``chaos`` dict may
carry ``kill_attempts`` (die with :func:`os._exit` while the job's
``attempt`` index is below it — deterministic crash-then-recover drills)
and ``delay_ms`` (sleep before analyzing — latency injection).  Daemons
started without ``--chaos`` ignore the field entirely.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from collections import OrderedDict
from typing import Dict, Optional

#: Exit code a chaos kill uses — distinguishable from real faults in logs.
CHAOS_EXIT_CODE = 23

#: Per-process AST memo: source-text digest → parsed Program.  Repeat
#: requests must analyze the *same AST object* or the digest-keyed caches
#: reject the entry (PFG nodes hold statement objects; results validate
#: ``source_program is program`` — see :mod:`repro.dataflow.cache`).
_AST_MEMO: "OrderedDict[str, object]" = OrderedDict()
_AST_MEMO_MAX = 64


def _parse_cached(source: str):
    """Parse ``source``, memoized by content digest (bounded LRU).

    Returns ``(program, source_digest)``.  Parse errors are not memoized —
    they raise through to the caller's taxonomy."""
    from ..lang import parse_program

    key = hashlib.sha256(source.encode("utf-8")).hexdigest()
    program = _AST_MEMO.get(key)
    if program is None:
        program = parse_program(source)
        _AST_MEMO[key] = program
        if len(_AST_MEMO) > _AST_MEMO_MAX:
            _AST_MEMO.popitem(last=False)
    else:
        _AST_MEMO.move_to_end(key)
    return program, key


def execute_request(
    params: Dict[str, object],
    level: int = 0,
    deadline_s: Optional[float] = None,
) -> Dict[str, object]:
    """Run one analysis request at the given degradation ``level``; never
    raises.

    ``level`` is the admission policy's precision decision: 0 runs the
    full pipeline (the :mod:`repro.robust.degrade` ladder still applies),
    1 forces ``preserved="none"`` (the ladder's no-preserved rung), and 2
    runs the conservative accumulate-only system directly — the cheapest
    sound answer, for a daemon fighting overload.  ``deadline_s`` arms a
    fresh :class:`~repro.dataflow.budget.ResourceBudget` so one hostile
    program cannot hold the worker past its allowance (the supervisor's
    wall-clock kill is the backstop for hangs outside the solver).

    Returns a JSON-ready record: ``status``/``error``, ``result`` (on
    analysis completion), ``degradation`` (ladder or policy provenance),
    and the worker session's ``counters`` for the parent to merge.
    """
    from .. import obs
    from ..analysis import find_anomalies, lint_synchronization
    from ..dataflow.budget import NonConvergenceError, ResourceBudget
    from ..dataflow.cache import (
        GLOBAL_CACHE,
        MISSING,
        cached_build_pfg,
        program_digest,
    )
    from ..dataflow.framework import FixpointDiverged
    from ..driver import optimize
    from ..lang.errors import LangError
    from ..pfg.validate import PFGInvariantError
    from ..reachdefs import solve_conservative

    t0 = time.perf_counter()
    record: Dict[str, object] = {
        "status": "ok",
        "error": None,
        "result": None,
        "degradation": None,
    }
    backend = str(params.get("backend") or "bitset")
    preserved = str(params.get("preserved") or "approx")
    solver = str(params.get("solver") or "stabilized")
    max_passes = params.get("max_passes")
    base_digest = params.get("base_digest")
    base_digest = str(base_digest) if base_digest is not None else None
    budget = (
        ResourceBudget(deadline_s=deadline_s, max_passes=max_passes)
        if deadline_s is not None or max_passes is not None
        else None
    )
    with obs.session() as sess:
        try:
            program, source_digest = _parse_cached(str(params["source"]))
            serve_key = (
                "serve",
                source_digest,
                backend,
                preserved,
                solver,
                max_passes,
                level,
                base_digest,
            )
            cached = GLOBAL_CACHE.get(serve_key, MISSING)
            if cached is not MISSING:
                record.update(cached)
                record["wall_ms"] = round((time.perf_counter() - t0) * 1000.0, 3)
                record["counters"] = sess.metrics.export_state()["counters"]
                return record
            # Delta form: re-analyze incrementally off the retained base
            # solve.  Only at full precision (level 0) — a degraded
            # admission level changes the equation system or Preserved
            # mode, and the retained rows answer a different question.
            incr_stamp: Optional[Dict[str, object]] = None
            incr_done = False
            if base_digest is not None:
                from ..incremental import incremental_analyze, lookup_base

                state = lookup_base(base_digest) if level == 0 else None
                if state is not None:
                    outcome = incremental_analyze(
                        state,
                        program,
                        backend=backend,
                        solver=solver,
                        preserved=preserved,
                        budget=budget,
                    )
                    result = outcome.result
                    anomalies = find_anomalies(result)
                    sync_issues = lint_synchronization(result.graph)
                    degradation = None
                    incr_stamp = outcome.stamp()
                    incr_done = True
                else:
                    # Base miss (eviction/cold worker) or degraded level:
                    # full solve below, fallback counted and stamped.
                    sess.metrics.inc("solve.incr.fallbacks")
                    incr_stamp = {
                        "base_digest": base_digest,
                        "regions_reused": 0,
                        "regions_resolved": 0,
                        "nodes_matched": 0,
                        "nodes_dirty": 0,
                        "fallback": "degraded" if level > 0 else "base-miss",
                    }
            if incr_done:
                pass
            elif level >= 2:
                graph = cached_build_pfg(program)
                result = solve_conservative(graph, backend=backend)
                anomalies = find_anomalies(result)
                sync_issues = lint_synchronization(graph)
                degradation = {
                    "level": 2,
                    "level_name": "conservative",
                    "reason": "admission degradation policy: conservative-only under load",
                    "budget_spent": {},
                }
            else:
                report = optimize(
                    program,
                    backend=backend,
                    preserved="none" if level >= 1 else preserved,
                    budget=budget,
                    degrade=True,
                    solver=solver,
                )
                result = report.result
                anomalies = report.anomalies
                sync_issues = report.sync_issues
                degradation = (
                    report.degradation.as_dict()
                    if report.degradation is not None
                    else None
                )
                if level >= 1 and degradation is None:
                    degradation = {
                        "level": 1,
                        "level_name": "no-preserved",
                        "reason": "admission degradation policy: preserved sets disabled under load",
                        "budget_spent": {},
                    }
            record["result"] = {
                "program": program.name,
                "digest": program_digest(program),
                "system": result.system,
                "stats": result.stats.as_dict(),
                "anomalies": len(anomalies),
                "sync_issues": len(sync_issues),
            }
            if incr_stamp is not None:
                record["result"]["incremental"] = incr_stamp
            if degradation is not None:
                record["status"] = "degraded"
                record["degradation"] = degradation
            elif level == 0 and not incr_done:
                # Retain full-precision solves as incremental bases so a
                # later delta request against this digest can reuse rows
                # (the engine retains its own outputs).
                from ..incremental import store_base

                store_base(program, result)
            # Completed records are deterministic given (source, options,
            # level) — memoize so warm repeats skip the solver entirely.
            # Failures are NOT cached: a deadline-driven failure is not a
            # property of the program, and retries should get to re-run.
            GLOBAL_CACHE.put(
                serve_key,
                {
                    "status": record["status"],
                    "result": record["result"],
                    "degradation": record["degradation"],
                },
            )
        except LangError as err:
            record["status"] = "error"
            record["error"] = str(err)
        except NonConvergenceError as err:
            record["status"] = "failed"
            record["error"] = f"analysis did not converge: {err.reason}"
        except FixpointDiverged as err:
            record["status"] = "failed"
            record["error"] = f"analysis did not converge: {err}"
        except PFGInvariantError as err:
            record["status"] = "invariant"
            record["error"] = f"graph invariant violation: {err}"
        except Exception as err:  # the worker must survive anything typed above misses
            record["status"] = "failed"
            record["error"] = f"{type(err).__name__}: {err}"
    record["wall_ms"] = round((time.perf_counter() - t0) * 1000.0, 3)
    record["counters"] = sess.metrics.export_state()["counters"]
    return record


def worker_main(conn, chaos_enabled: bool = False, peer=None) -> None:
    """Worker process entry: serve jobs from ``conn`` until EOF or a
    ``None`` shutdown sentinel.

    ``peer`` is the supervisor's end of the pipe, inherited across fork —
    closed immediately so that if the daemon dies uncleanly (SIGKILL, a
    crash) this worker sees EOF on ``conn`` and exits instead of holding
    the pipe open against itself and lingering forever.

    SIGINT is ignored (a ^C to the daemon's process group must not kill
    workers before the parent's graceful drain coordinates shutdown);
    SIGTERM keeps its default so the supervisor's ``kill()`` works.
    """
    if peer is not None:
        try:
            peer.close()
        except OSError:  # pragma: no cover - already closed
            pass
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except ValueError:  # pragma: no cover - non-main-thread embedding
        pass
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            return
        if job is None:
            return
        chaos = (job.get("chaos") or {}) if chaos_enabled else {}
        if int(chaos.get("kill_attempts", 0) or 0) > int(job.get("attempt", 0)):
            os._exit(CHAOS_EXIT_CODE)
        delay_ms = float(chaos.get("delay_ms", 0) or 0)
        if delay_ms > 0:
            time.sleep(delay_ms / 1000.0)
        record = execute_request(
            job.get("params") or {},
            level=int(job.get("level", 0)),
            deadline_s=job.get("deadline_s"),
        )
        try:
            conn.send(record)
        except (BrokenPipeError, OSError):
            return
