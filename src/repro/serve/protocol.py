"""The ``repro-serve/1`` wire protocol: request validation, the response
envelope, and the serve-side error taxonomy.

Every RPC exchange is JSON over HTTP.  A request is::

    POST /rpc
    {"id": "req-1",                  # required, client-chosen, echoed back
     "method": "analyze",            # the only method today
     "params": {"source": "program ... end program",
                "backend": "bitset", "preserved": "approx",
                "solver": "stabilized", "max_passes": null,
                "deadline_s": null,
                "base_digest": null},    # delta form: see below
     "chaos": {"kill_attempts": 0, "delay_ms": 0}}   # honored only with --chaos

The **delta form** sets ``params.base_digest`` to the ``digest`` field of
a prior response: the worker then re-analyzes the new source
*incrementally* off the retained base solve (:mod:`repro.incremental`),
reusing every condensation region the edit provably did not perturb.
Fallback — base digest unknown, structural mismatch, any
synchronization involvement, or a degraded admission level — silently
takes the ordinary full-analysis path; either way the response is
terminal and carries an ``incremental`` provenance block
(``{base_digest, regions_reused, regions_resolved, nodes_matched,
nodes_dirty, fallback}``) in ``result``, so clients can observe reuse
without a second request shape.

and **every admitted request receives exactly one terminal response** —
the zero-lost-requests invariant the chaos drills enforce::

    {"schema": "repro-serve/1", "id": "req-1",
     "status": "ok", "code": 0, "error": null,
     "result": {"program": ..., "digest": ..., "system": ...,
                "stats": ..., "anomalies": ..., "sync_issues": ...},
     "degradation": null,            # ladder/policy provenance when degraded
     "served_level": 0,              # admission policy's precision level
     "attempts": 1,                  # worker tries (retries show up here)
     "timings": {"queue_ms": ..., "exec_ms": ..., "total_ms": ...}}

Statuses extend the batch driver's exit-code-aligned taxonomy
(:data:`repro.batch.TASK_EXIT_CODES`) with the transport-level outcomes a
*service* can produce; ``code`` keeps the CLI exit-code contract meaning
so a response row answers "what would this program have exited with?":

=============  ====  ======================================================
status         code  meaning
=============  ====  ======================================================
ok             0     full-precision analysis succeeded
degraded       0     sound result from a lower rung (ladder or load policy)
bad-request    1     malformed envelope (missing id/source, unknown option)
error          1     front-end failure (syntax error in the program)
failed         2     analysis failure (non-convergence, budget exhaustion)
invariant      3     PFG invariant violation
timeout        2     worker blew the request deadline and was killed
crashed        2     worker died and retries were exhausted
shed           5     admission control refused: queue full (HTTP 429)
draining       5     daemon is draining, not admitting (HTTP 503)
=============  ====  ======================================================

``shed``/``draining`` are *fast* refusals — they never consume a worker —
and use code 5 (the first code the CLI contract does not claim) so
load-shedding is distinguishable from any per-program outcome.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..batch.driver import TASK_EXIT_CODES

SCHEMA = "repro-serve/1"

#: Serve status → CLI-contract-aligned code (see module docstring).
STATUS_CODES: Dict[str, int] = {
    "ok": TASK_EXIT_CODES["ok"],
    "degraded": TASK_EXIT_CODES["degraded"],
    "error": TASK_EXIT_CODES["error"],
    "failed": TASK_EXIT_CODES["failed"],
    "invariant": TASK_EXIT_CODES["invariant"],
    "crashed": TASK_EXIT_CODES["crashed"],
    "timeout": 2,  # deadline exhaustion is an analysis failure operationally
    "bad-request": 1,
    "shed": 5,
    "draining": 5,
}

#: Serve status → HTTP status for the envelope.  Analysis outcomes are
#: HTTP 200 (the RPC itself succeeded; the typed status is in the body);
#: only transport-level refusals use error HTTP codes, so clients can
#: implement backpressure (429) and drain-aware retry (503) without
#: parsing bodies.
HTTP_STATUS: Dict[str, int] = {
    "bad-request": 400,
    "shed": 429,
    "draining": 503,
}

VALID_BACKENDS = ("set", "bitset", "numpy")
VALID_PRESERVED = ("approx", "none")
VALID_SOLVERS = ("stabilized", "round-robin", "worklist", "scc")
VALID_METHODS = ("analyze",)


class ProtocolError(ValueError):
    """A request that violates ``repro-serve/1`` (maps to ``bad-request``)."""


def validate_request(obj: object) -> Dict[str, object]:
    """Check a decoded request body against the protocol; returns it.

    Raises :class:`ProtocolError` with a client-actionable message on any
    violation — the daemon turns that into a ``bad-request`` response
    *before* admission, so malformed traffic never consumes queue slots.
    """
    if not isinstance(obj, dict):
        raise ProtocolError("request body must be a JSON object")
    if "id" not in obj or obj["id"] is None:
        raise ProtocolError("request must carry a non-null 'id'")
    if not isinstance(obj["id"], (str, int)):
        raise ProtocolError("'id' must be a string or integer")
    method = obj.get("method", "analyze")
    if method not in VALID_METHODS:
        raise ProtocolError(
            f"unknown method {method!r}; supported: {', '.join(VALID_METHODS)}"
        )
    params = obj.get("params")
    if not isinstance(params, dict):
        raise ProtocolError("'params' must be an object")
    source = params.get("source")
    if not isinstance(source, str) or not source.strip():
        raise ProtocolError("'params.source' must be non-empty program text")
    for key, valid in (
        ("backend", VALID_BACKENDS),
        ("preserved", VALID_PRESERVED),
        ("solver", VALID_SOLVERS),
    ):
        value = params.get(key)
        if value is not None and value not in valid:
            raise ProtocolError(
                f"'params.{key}' must be one of {', '.join(valid)} (got {value!r})"
            )
    max_passes = params.get("max_passes")
    if max_passes is not None and (not isinstance(max_passes, int) or max_passes <= 0):
        raise ProtocolError("'params.max_passes' must be a positive integer")
    deadline = params.get("deadline_s")
    if deadline is not None and (
        not isinstance(deadline, (int, float)) or deadline <= 0
    ):
        raise ProtocolError("'params.deadline_s' must be a positive number")
    base_digest = params.get("base_digest")
    if base_digest is not None and (
        not isinstance(base_digest, str) or not base_digest.strip()
    ):
        raise ProtocolError(
            "'params.base_digest' must be a non-empty digest string "
            "(the 'digest' field of a prior response)"
        )
    chaos = obj.get("chaos")
    if chaos is not None and not isinstance(chaos, dict):
        raise ProtocolError("'chaos' must be an object")
    return obj


def response(
    request_id: object,
    status: str,
    error: Optional[str] = None,
    result: Optional[Dict[str, object]] = None,
    degradation: Optional[Dict[str, object]] = None,
    served_level: Optional[int] = None,
    attempts: int = 0,
    timings: Optional[Dict[str, float]] = None,
) -> Dict[str, object]:
    """Build a terminal ``repro-serve/1`` envelope (the only response shape
    the daemon ever sends for ``/rpc``)."""
    if status not in STATUS_CODES:
        raise ValueError(f"unknown serve status {status!r}")
    return {
        "schema": SCHEMA,
        "id": request_id,
        "status": status,
        "code": STATUS_CODES[status],
        "error": error,
        "result": result,
        "degradation": degradation,
        "served_level": served_level,
        "attempts": attempts,
        "timings": timings or {},
    }


def http_status(status: str) -> int:
    """The HTTP status code an envelope with serve-status ``status`` rides on."""
    return HTTP_STATUS.get(status, 200)


def classify(envelope: Dict[str, object]) -> Tuple[str, int]:
    """(status, code) of a received envelope, validating the schema stamp."""
    if envelope.get("schema") != SCHEMA:
        raise ProtocolError(f"not a {SCHEMA} envelope: {envelope.get('schema')!r}")
    return str(envelope.get("status")), int(envelope.get("code", -1))
