"""Admission control and the load-aware degradation policy.

Overload handling follows one rule: **never buffer unboundedly, never
hang a client**.  The :class:`AdmissionController` tracks the number of
admitted-but-unfinished requests; past ``max_pending`` it answers
``shed`` *immediately* (the daemon maps that to a fast HTTP 429 without
ever touching a worker), and once draining begins it answers
``draining`` (HTTP 503) so load balancers rotate traffic away.

Below the shed ceiling, the :class:`DegradationPolicy` decides how much
precision the service can currently afford — the serving-layer analogue
of the per-analysis ladder in :mod:`repro.robust.degrade`, and driven by
the same worst-case-cost reality ("On the computational complexity of
Data Flow Analysis", PAPERS.md): when queue depth or recent p99 latency
crosses a threshold, new requests are served one rung down (full →
no-preserved → conservative) instead of letting the queue grow.  Both
classes are pure bookkeeping — no I/O, no clocks — so the transitions are
unit-testable exactly.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

#: ``try_admit`` outcomes.
ADMITTED = "admitted"
SHED = "shed"
DRAINING = "draining"


class AdmissionController:
    """Bounded-pending admission: counts in-flight work, refuses past the
    bound, and flips to refuse-everything once draining begins."""

    def __init__(self, max_pending: int):
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_pending = max_pending
        self._lock = threading.Lock()
        self.pending = 0
        self.admitted = 0
        self.shed = 0
        self.drained_refusals = 0
        self.draining = False

    def try_admit(self) -> str:
        """One of :data:`ADMITTED` / :data:`SHED` / :data:`DRAINING`.
        An admitted caller **must** call :meth:`release` exactly once."""
        with self._lock:
            if self.draining:
                self.drained_refusals += 1
                return DRAINING
            if self.pending >= self.max_pending:
                self.shed += 1
                return SHED
            self.pending += 1
            self.admitted += 1
            return ADMITTED

    def release(self) -> None:
        with self._lock:
            if self.pending <= 0:
                raise RuntimeError("release() without a matching admit")
            self.pending -= 1

    def begin_drain(self) -> None:
        with self._lock:
            self.draining = True

    def idle(self) -> bool:
        """True once nothing admitted remains in flight."""
        with self._lock:
            return self.pending == 0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            return {
                "max_pending": self.max_pending,
                "pending": self.pending,
                "admitted": self.admitted,
                "shed": self.shed,
                "drained_refusals": self.drained_refusals,
                "draining": self.draining,
            }


class DegradationPolicy:
    """Load → precision level (0 full, 1 no-preserved, 2 conservative).

    Each threshold is optional (``None`` disables that trigger).  The
    served level is the *worst* any live trigger demands: queue depth
    ``>= queue_l2`` or p99 ``>= p99_ms_l2`` forces level 2; the ``_l1``
    thresholds force level 1.  Thresholds are inclusive so a policy with
    ``queue_l1=0`` degrades every request — useful for drills and tests.
    """

    def __init__(
        self,
        queue_l1: Optional[int] = None,
        queue_l2: Optional[int] = None,
        p99_ms_l1: Optional[float] = None,
        p99_ms_l2: Optional[float] = None,
    ):
        self.queue_l1 = queue_l1
        self.queue_l2 = queue_l2
        self.p99_ms_l1 = p99_ms_l1
        self.p99_ms_l2 = p99_ms_l2

    def level(self, queue_depth: int, p99_ms: Optional[float]) -> int:
        level = 0
        if self.queue_l1 is not None and queue_depth >= self.queue_l1:
            level = 1
        if self.queue_l2 is not None and queue_depth >= self.queue_l2:
            level = 2
        if p99_ms is not None:
            if self.p99_ms_l1 is not None and p99_ms >= self.p99_ms_l1 and level < 1:
                level = 1
            if self.p99_ms_l2 is not None and p99_ms >= self.p99_ms_l2:
                level = 2
        return level

    def describe(self) -> Dict[str, object]:
        return {
            "queue_l1": self.queue_l1,
            "queue_l2": self.queue_l2,
            "p99_ms_l1": self.p99_ms_l1,
            "p99_ms_l2": self.p99_ms_l2,
        }
