"""The ``repro serve`` daemon: asyncio JSON-RPC-over-HTTP, stdlib only.

One long-lived process holds the HTTP front end, the
:class:`~repro.serve.admission.AdmissionController`, and the
:class:`~repro.serve.supervisor.Supervisor`-owned worker pool.  Request
flow for ``POST /rpc``::

    parse + validate  → bad-request (400) before touching admission
    try_admit         → shed (429) / draining (503), fast and worker-free
    policy.level(...) → 0/1/2 precision for this request (load-aware)
    supervisor.execute in an executor thread → exactly one terminal record
    release admission, merge worker counters, record latency

``GET /healthz`` returns the full operational snapshot (supervisor
stats, admission stats, merged fleet counters — including the workers'
``cache.*`` — queue depth, recent p99) and is always 200 while the
process lives; ``GET /readyz`` is 200 only while admitting, 503 once
draining — the load-balancer signal.

Graceful drain (SIGTERM/SIGINT in the CLI, :meth:`ServeApp.request_drain`
programmatically): stop admitting, wait for in-flight requests, stop the
supervisor, flush the metrics registry as ``repro-obs/1`` JSONL telemetry
(``--telemetry``), close the listener.  The daemon owns a private
:class:`~repro.obs.metrics.Metrics` registry rather than the ambient
session so ``/healthz`` works identically under tests, the CLI, and
embedding.
"""

from __future__ import annotations

import asyncio
import collections
import json
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from ..obs.metrics import Metrics
from ..obs.sinks import write_jsonl
from . import protocol
from .admission import ADMITTED, SHED, AdmissionController, DegradationPolicy
from .supervisor import PoolStopped, Supervisor

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    429: "Too Many Requests",
    503: "Service Unavailable",
}


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs; defaults match the CLI's."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral; the bound port lands in ready_file/app.port
    workers: int = 2
    max_pending: int = 16
    retries: int = 1
    deadline_s: float = 10.0
    deadline_grace_s: float = 2.0
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 1.0
    chaos: bool = False
    telemetry_path: Optional[str] = None
    ready_file: Optional[str] = None
    drain_timeout_s: float = 30.0
    latency_window: int = 128
    #: Queue-depth degradation thresholds; ``None`` = auto (2×workers / 4×workers).
    degrade_queue_l1: Optional[int] = None
    degrade_queue_l2: Optional[int] = None
    #: p99 degradation thresholds in ms; ``None`` disables the p99 trigger.
    degrade_p99_ms_l1: Optional[float] = None
    degrade_p99_ms_l2: Optional[float] = None

    def policy(self) -> DegradationPolicy:
        l1 = self.degrade_queue_l1
        if l1 is None:
            l1 = max(4, 2 * self.workers)
        l2 = self.degrade_queue_l2
        if l2 is None:
            l2 = 2 * l1 if l1 > 0 else max(8, 4 * self.workers)
        return DegradationPolicy(
            queue_l1=l1,
            queue_l2=l2,
            p99_ms_l1=self.degrade_p99_ms_l1,
            p99_ms_l2=self.degrade_p99_ms_l2,
        )


@dataclass
class _LatencyWindow:
    """Recent request latencies (ms) for the load-aware policy — a small
    ring, not the cumulative histogram, so recovery is observable."""

    maxlen: int = 128
    _values: Deque[float] = field(default_factory=collections.deque)

    def add(self, ms: float) -> None:
        self._values.append(ms)
        while len(self._values) > self.maxlen:
            self._values.popleft()

    def p99(self) -> Optional[float]:
        if not self._values:
            return None
        ordered = sorted(self._values)
        rank = max(1, -(-99 * len(ordered) // 100))  # ceil without math import
        return ordered[rank - 1]


class ServeApp:
    """The daemon's moving parts, wired; see the module docstring."""

    def __init__(self, config: ServeConfig):
        self.config = config
        self.metrics = Metrics()
        self.admission = AdmissionController(config.max_pending)
        self.policy = config.policy()
        self.supervisor = Supervisor(
            size=config.workers,
            retries=config.retries,
            backoff_base_s=config.backoff_base_s,
            backoff_cap_s=config.backoff_cap_s,
            deadline_grace_s=config.deadline_grace_s,
            chaos_enabled=config.chaos,
        )
        self._latency = _LatencyWindow(maxlen=config.latency_window)
        self._exec = ThreadPoolExecutor(
            max_workers=config.max_pending + config.workers + 4,
            thread_name_prefix="serve-exec",
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._closed: Optional[asyncio.Event] = None
        self._drain_started = False
        self._writers: set = set()
        self.port: Optional[int] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._closed = asyncio.Event()
        self.supervisor.start()
        self._server = await asyncio.start_server(
            self._handle_conn, host=self.config.host, port=self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.config.ready_file:
            import os

            # Atomic: watchers poll for this file and must never read a
            # half-written JSON body.
            tmp = f"{self.config.ready_file}.tmp"
            with open(tmp, "w") as fh:
                json.dump({"port": self.port, "pid": os.getpid()}, fh)
            os.replace(tmp, self.config.ready_file)

    def request_drain(self) -> None:
        """Begin graceful drain; safe from signal handlers and any thread.
        Idempotent — a second call (or one after the loop already shut
        down) is a no-op rather than an error."""
        if self._loop is None or self._loop.is_closed():
            return
        try:
            self._loop.call_soon_threadsafe(self._schedule_drain)
        except RuntimeError:  # loop closed between the check and the call
            pass

    def _schedule_drain(self) -> None:
        if not self._drain_started:
            self._drain_started = True
            asyncio.ensure_future(self._drain())

    async def _drain(self) -> None:
        self.admission.begin_drain()
        deadline = time.monotonic() + self.config.drain_timeout_s
        while not self.admission.idle() and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        await asyncio.get_running_loop().run_in_executor(
            None, self.supervisor.stop
        )
        self._flush_telemetry()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Close lingering keep-alive connections so their handler tasks
        # finish (readline sees EOF) before the loop itself shuts down.
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        self._exec.shutdown(wait=False)
        self._closed.set()

    def _flush_telemetry(self) -> None:
        if not self.config.telemetry_path:
            return
        self.metrics.set_gauge("serve.queue_depth", 0.0)
        write_jsonl(
            self.config.telemetry_path,
            tracer=None,
            metrics=self.metrics,
            meta={"command": "serve", "workers": self.config.workers},
        )

    async def wait_closed(self) -> None:
        await self._closed.wait()

    # -- HTTP front end --------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        self._writers.add(writer)
        try:
            while True:
                request_line = await asyncio.wait_for(reader.readline(), timeout=60.0)
                if not request_line or not request_line.strip():
                    break
                parts = request_line.decode("latin-1").split()
                if len(parts) < 2:
                    break
                method, target = parts[0], parts[1]
                version = parts[2] if len(parts) > 2 else "HTTP/1.1"
                headers: Dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    key, _, value = line.decode("latin-1").partition(":")
                    headers[key.strip().lower()] = value.strip()
                length = int(headers.get("content-length", "0") or 0)
                body = await reader.readexactly(length) if length else b""
                status, payload = await self._route(method, target, body)
                keep_alive = (
                    headers.get(
                        "connection",
                        "keep-alive" if version == "HTTP/1.1" else "close",
                    ).lower()
                    != "close"
                )
                data = json.dumps(payload, sort_keys=True).encode("utf-8")
                head = (
                    f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
                    "\r\n"
                ).encode("latin-1")
                writer.write(head + data)
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
            TimeoutError,
        ):
            pass
        except asyncio.CancelledError:
            # Loop teardown cancelled us mid-read; the connection is being
            # abandoned anyway — exit quietly instead of spraying tracebacks.
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                pass

    async def _route(
        self, method: str, target: str, body: bytes
    ) -> Tuple[int, Dict[str, object]]:
        target = target.split("?", 1)[0]
        if target == "/healthz" and method == "GET":
            return 200, self.health_snapshot()
        if target == "/readyz" and method == "GET":
            if self.admission.draining:
                return 503, {"ready": False, "reason": "draining"}
            return 200, {"ready": True}
        if target == "/rpc":
            if method != "POST":
                return 405, {"error": "use POST for /rpc"}
            return await self._handle_rpc(body)
        return 404, {"error": f"no route {method} {target}"}

    # -- the RPC path ----------------------------------------------------

    async def _handle_rpc(self, body: bytes) -> Tuple[int, Dict[str, object]]:
        t_total = time.perf_counter()
        self.metrics.inc("serve.requests")
        try:
            request = protocol.validate_request(json.loads(body.decode("utf-8")))
        except (json.JSONDecodeError, UnicodeDecodeError) as err:
            return self._respond(
                protocol.response(None, "bad-request", error=f"invalid JSON: {err}"),
                t_total,
            )
        except protocol.ProtocolError as err:
            try:
                rid = json.loads(body.decode("utf-8")).get("id")
            except Exception:
                rid = None
            return self._respond(
                protocol.response(rid, "bad-request", error=str(err)), t_total
            )
        rid = request["id"]
        decision = self.admission.try_admit()
        if decision != ADMITTED:
            status = "shed" if decision == SHED else "draining"
            error = (
                f"admission queue full ({self.admission.max_pending} pending); retry later"
                if status == "shed"
                else "daemon is draining; not admitting new work"
            )
            return self._respond(
                protocol.response(rid, status, error=error), t_total
            )
        try:
            params: Dict[str, object] = dict(request["params"])
            queue_depth = max(0, self.admission.pending - self.config.workers)
            self.metrics.set_gauge("serve.queue_depth", float(self.admission.pending))
            level = self.policy.level(queue_depth, self._latency.p99())
            if level:
                self.metrics.inc(f"serve.policy.level{level}")
            deadline = self.config.deadline_s
            requested = params.get("deadline_s")
            if requested is not None:
                deadline = min(float(requested), deadline)
            chaos = request.get("chaos") if self.config.chaos else None
            t_queue = time.perf_counter()
            try:
                record = await asyncio.get_running_loop().run_in_executor(
                    self._exec,
                    self.supervisor.execute,
                    params,
                    deadline,
                    level,
                    chaos,
                )
            except PoolStopped:
                return self._respond(
                    protocol.response(
                        rid, "draining", error="daemon drained mid-request"
                    ),
                    t_total,
                )
            t_done = time.perf_counter()
            self.metrics.merge_counters(
                {str(k): int(v) for k, v in (record.get("counters") or {}).items()}
            )
            attempts = int(record.get("attempts", 1))
            if attempts > 1:
                self.metrics.inc("serve.retried_requests")
            sup = self.supervisor.stats()
            self.metrics.counter("serve.worker_crashes").value = sup["crashes"]
            self.metrics.counter("serve.worker_respawns").value = sup["respawns"]
            envelope = protocol.response(
                rid,
                str(record["status"]),
                error=record.get("error"),
                result=record.get("result"),
                degradation=record.get("degradation"),
                served_level=level,
                attempts=attempts,
                timings={
                    "queue_ms": round((t_queue - t_total) * 1000.0, 3),
                    "exec_ms": round((t_done - t_queue) * 1000.0, 3),
                },
            )
            latency_ms = (time.perf_counter() - t_total) * 1000.0
            self._latency.add(latency_ms)
            self.metrics.observe("serve.latency_ms", round(latency_ms, 3))
            return self._respond(envelope, t_total)
        finally:
            self.admission.release()

    def _respond(
        self, envelope: Dict[str, object], t_start: float
    ) -> Tuple[int, Dict[str, object]]:
        envelope["timings"] = dict(envelope.get("timings") or {})
        envelope["timings"]["total_ms"] = round(
            (time.perf_counter() - t_start) * 1000.0, 3
        )
        status = str(envelope["status"])
        self.metrics.inc(f"serve.responses.{status}")
        return protocol.http_status(status), envelope

    # -- health ----------------------------------------------------------

    def health_snapshot(self) -> Dict[str, object]:
        counters = {k: c.value for k, c in sorted(self.metrics.counters.items())}
        return {
            "status": "draining" if self.admission.draining else "ok",
            "schema": protocol.SCHEMA,
            "workers": self.supervisor.stats(),
            "admission": self.admission.snapshot(),
            "queue_depth": max(0, self.admission.pending - self.config.workers),
            "p99_ms": self._latency.p99(),
            "policy": self.policy.describe(),
            "counters": counters,
        }


async def _amain(config: ServeConfig) -> int:
    import signal as _signal
    import sys

    app = ServeApp(config)
    await app.start()
    loop = asyncio.get_running_loop()
    for sig in (_signal.SIGTERM, _signal.SIGINT):
        try:
            loop.add_signal_handler(sig, app.request_drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
            pass
    sys.stderr.write(
        f"repro serve: listening on {config.host}:{app.port} "
        f"(workers={config.workers}, max_pending={config.max_pending}"
        f"{', CHAOS ENABLED' if config.chaos else ''})\n"
    )
    sys.stderr.flush()
    await app.wait_closed()
    sys.stderr.write("repro serve: drained and stopped\n")
    return 0


def run_server(config: ServeConfig) -> int:
    """Blocking entry point for the CLI: serve until SIGTERM/SIGINT, drain,
    return 0."""
    return asyncio.run(_amain(config))


class ServerThread:
    """A live daemon on a background thread — the integration-test and
    embedding harness.  ``with ServerThread(config) as srv: ...srv.port...``
    guarantees drain + join on exit."""

    def __init__(self, config: ServeConfig):
        self.app = ServeApp(config)
        self._thread = None
        self._ready = None

    def __enter__(self) -> "ServerThread":
        import threading

        self._ready = threading.Event()
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("serve thread failed to start in 30s")
        return self

    async def _main(self) -> None:
        await self.app.start()
        self._ready.set()
        await self.app.wait_closed()

    @property
    def port(self) -> int:
        return self.app.port

    def drain(self) -> None:
        self.app.request_drain()

    def join(self, timeout: float = 30.0) -> None:
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("serve thread did not stop after drain")

    def __exit__(self, *exc) -> None:
        self.drain()
        self.join()
