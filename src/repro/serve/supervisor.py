"""Supervised worker pool: crash→respawn, deadline kills, capped-backoff
retries.

The daemon never analyzes in-process — every request executes in a child
process owned by a :class:`Supervisor`.  The supervisor's contract is the
serving half of the zero-lost-requests invariant:

* :meth:`Supervisor.execute` **always returns exactly one terminal
  record** for an accepted job (it raises only :class:`PoolStopped`, and
  only once draining has begun — which admission control prevents from
  ever meeting live traffic);
* a worker that **crashes** mid-request (segfault, OOM kill, injected
  chaos) is killed and respawned, and the request is retried on a fresh
  worker with capped exponential backoff + jitter, up to ``retries``
  resubmissions; exhaustion yields a typed ``crashed`` record;
* a worker that **blows the request deadline** is killed and respawned,
  and the request terminates immediately with a ``timeout`` record — the
  deadline is already spent, so retrying would double the damage;
* a worker found **dead while idle** is replaced before it is ever handed
  a job.

The pool is deliberately synchronous and thread-safe (the asyncio daemon
calls :meth:`execute` from an executor thread per in-flight request);
``worker_factory`` is injectable so the state machine is unit-testable
with scripted fakes, no real processes involved.
"""

from __future__ import annotations

import multiprocessing
import queue
import random
import threading
import time
from typing import Callable, Dict, List, Optional

from .worker import worker_main


class WorkerCrash(RuntimeError):
    """The worker process died before replying (transport-level fault)."""


class WorkerTimeout(RuntimeError):
    """The worker failed to reply within the wall-clock allowance."""


class PoolStopped(RuntimeError):
    """The supervisor is stopped/draining and refuses new work."""


def _pool_context():
    """Fork where available (cheap respawn; Linux, the deployment target),
    spawn elsewhere.  Workers only touch their pipe end plus freshly
    imported analysis code, so fork's inherited-state hazards don't bite."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


class ProcessWorker:
    """One supervised child process speaking the job/record pipe protocol."""

    def __init__(self, chaos_enabled: bool = False):
        self.chaos_enabled = chaos_enabled
        self._proc = None
        self._conn = None

    def start(self) -> "ProcessWorker":
        ctx = _pool_context()
        parent, child = ctx.Pipe(duplex=True)
        # The child gets the *parent* end too, purely so it can close its
        # inherited copy (fork copies every fd): otherwise a SIGKILLed
        # daemon leaves workers blocked on a pipe they themselves hold
        # open, and they never see EOF and never exit.
        self._proc = ctx.Process(
            target=worker_main,
            args=(child, self.chaos_enabled, parent),
            daemon=True,
            name="repro-serve-worker",
        )
        self._proc.start()
        child.close()  # the parent's copy; EOF now propagates on child death
        self._conn = parent
        return self

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.is_alive()

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    def call(self, job: Dict[str, object], timeout_s: float) -> Dict[str, object]:
        """Send one job and wait for its record.  Raises
        :class:`WorkerCrash` on death, :class:`WorkerTimeout` on deadline."""
        try:
            self._conn.send(job)
        except (BrokenPipeError, OSError) as err:
            raise WorkerCrash(f"worker pid={self.pid} pipe closed: {err}") from err
        try:
            if not self._conn.poll(timeout_s):
                raise WorkerTimeout(
                    f"worker pid={self.pid} gave no reply within {timeout_s:.3f}s"
                )
            return self._conn.recv()
        except (EOFError, OSError) as err:
            raise WorkerCrash(f"worker pid={self.pid} died mid-request: {err}") from err

    def shutdown(self, grace_s: float = 1.0) -> None:
        """Cooperative stop: sentinel, short join, then kill if stubborn."""
        try:
            self._conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        if self._proc is not None:
            self._proc.join(grace_s)
        self.kill()

    def kill(self) -> None:
        if self._proc is not None and self._proc.is_alive():
            self._proc.kill()
            self._proc.join(1.0)
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:
                pass


class Supervisor:
    """The worker-pool state machine (see module docstring).

    ``worker_factory`` must return objects with the :class:`ProcessWorker`
    interface (``start``/``call``/``kill``/``shutdown``/``alive``); the
    default builds real process workers.  ``sleep`` and ``rng`` are
    injectable so retry/backoff behavior is deterministic under test.
    """

    def __init__(
        self,
        size: int,
        worker_factory: Optional[Callable[[], object]] = None,
        retries: int = 1,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 1.0,
        backoff_jitter: float = 0.5,
        deadline_grace_s: float = 2.0,
        chaos_enabled: bool = False,
        rng: Optional[random.Random] = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        if size < 1:
            raise ValueError("supervisor needs at least one worker")
        self.size = size
        self.retries = max(0, retries)
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.backoff_jitter = backoff_jitter
        self.deadline_grace_s = deadline_grace_s
        self._factory = worker_factory or (
            lambda: ProcessWorker(chaos_enabled=chaos_enabled)
        )
        self._rng = rng if rng is not None else random.Random()
        self._sleep = sleep
        self._idle: "queue.Queue" = queue.Queue()
        self._lock = threading.Lock()
        self._workers: List[object] = []
        self._stopped = False
        # Lifetime telemetry (exposed via /healthz).
        self.crashes = 0
        self.respawns = 0
        self.retried = 0
        self.timeouts = 0

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "Supervisor":
        for _ in range(self.size):
            self._idle.put(self._spawn())
        return self

    def _spawn(self):
        worker = self._factory()
        worker.start()
        with self._lock:
            self._workers.append(worker)
        return worker

    def stop(self, grace_s: float = 1.0) -> None:
        """Stop admitting, wake blocked acquirers, shut every worker down.
        Callers are expected to have drained in-flight work first (the
        daemon's drain sequence does); any worker still busy is killed."""
        with self._lock:
            if self._stopped:
                return
            self._stopped = True
            workers = list(self._workers)
        self._idle.put(None)  # sentinel: wakes one blocked acquirer, re-queued by each
        for worker in workers:
            worker.shutdown(grace_s)

    @property
    def stopped(self) -> bool:
        return self._stopped

    def stats(self) -> Dict[str, int]:
        with self._lock:
            alive = sum(1 for w in self._workers if w.alive)
        return {
            "size": self.size,
            "alive": alive,
            "crashes": self.crashes,
            "respawns": self.respawns,
            "retries": self.retried,
            "timeouts": self.timeouts,
        }

    # -- the state machine ----------------------------------------------

    def _acquire(self):
        while True:
            if self._stopped:
                raise PoolStopped("supervisor is draining; no new work")
            worker = self._idle.get()
            if worker is None:
                self._idle.put(None)  # keep the sentinel for other waiters
                raise PoolStopped("supervisor is draining; no new work")
            if not worker.alive:
                # Died while idle (external kill / chaos): replace silently.
                self._retire(worker, respawn=True)
                continue
            return worker

    def _retire(self, worker, respawn: bool) -> None:
        worker.kill()
        with self._lock:
            if worker in self._workers:
                self._workers.remove(worker)
            self.crashes += 1
            should_respawn = respawn and not self._stopped
        if should_respawn:
            fresh = self._spawn()
            with self._lock:
                self.respawns += 1
            self._idle.put(fresh)

    def _backoff(self, attempt: int) -> float:
        base = min(self.backoff_cap_s, self.backoff_base_s * (2 ** (attempt - 1)))
        return base * (1.0 + self.backoff_jitter * self._rng.random())

    def execute(
        self,
        params: Dict[str, object],
        deadline_s: float,
        level: int = 0,
        chaos: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        """Run one request to a terminal record (never raises once started,
        except :class:`PoolStopped` while draining).  The returned record
        always carries ``attempts``."""
        attempts = 0
        while True:
            worker = self._acquire()
            job = {
                "params": params,
                "deadline_s": deadline_s,
                "level": level,
                "attempt": attempts,
                "chaos": chaos,
            }
            attempts += 1
            timeout_s = deadline_s + self.deadline_grace_s
            try:
                record = worker.call(job, timeout_s=timeout_s)
            except WorkerTimeout:
                # The deadline is spent; killing + reporting beats retrying.
                self._retire(worker, respawn=True)
                with self._lock:
                    self.timeouts += 1
                return {
                    "status": "timeout",
                    "error": (
                        f"worker gave no reply within {timeout_s:.3f}s "
                        f"(deadline {deadline_s}s + grace); killed and respawned"
                    ),
                    "result": None,
                    "degradation": None,
                    "counters": {},
                    "attempts": attempts,
                }
            except WorkerCrash as err:
                self._retire(worker, respawn=True)
                if attempts > self.retries:
                    return {
                        "status": "crashed",
                        "error": (
                            f"worker crashed and retries exhausted "
                            f"after {attempts} attempt(s): {err}"
                        ),
                        "result": None,
                        "degradation": None,
                        "counters": {},
                        "attempts": attempts,
                    }
                with self._lock:
                    self.retried += 1
                self._sleep(self._backoff(attempts))
                continue
            else:
                self._idle.put(worker)
                record["attempts"] = attempts
                return record
