"""repro.serve — the fault-tolerant analysis-as-a-service daemon.

``python -m repro serve --port N --workers K`` runs a long-lived asyncio
JSON-RPC-over-HTTP daemon (stdlib only) that executes analyses in a
supervised process pool with warm per-worker caches.  The robustness
machinery is the point:

* **supervised workers** — a crashed worker is killed and respawned; the
  request is retried with capped exponential backoff + jitter before a
  typed ``crashed`` response surfaces on the wire
  (:mod:`repro.serve.supervisor`);
* **per-request deadlines** — every request arms a fresh
  :class:`~repro.dataflow.budget.ResourceBudget`; a deadline-blown worker
  is killed, not waited on;
* **admission control** — a bounded pending queue; overload gets a fast
  ``shed`` (HTTP 429) response, never unbounded buffering
  (:mod:`repro.serve.admission`);
* **load-aware degradation** — queue depth / p99 latency thresholds step
  new requests down the :mod:`repro.robust.degrade` ladder (full →
  no-preserved → conservative);
* **graceful drain** — SIGTERM stops admission, finishes in-flight work,
  flushes JSONL telemetry, then exits.

The invariant the chaos drills (``benchmarks/run_serve.py --chaos``)
enforce: **every admitted request receives exactly one terminal
``repro-serve/1`` response** — no hangs, no duplicates, no losses.  See
``docs/serving.md``.
"""

from .admission import ADMITTED, DRAINING, SHED, AdmissionController, DegradationPolicy
from .app import ServeApp, ServeConfig, ServerThread, run_server
from .client import ServeClient
from .protocol import (
    HTTP_STATUS,
    SCHEMA,
    STATUS_CODES,
    ProtocolError,
    classify,
    http_status,
    response,
    validate_request,
)
from .supervisor import (
    PoolStopped,
    ProcessWorker,
    Supervisor,
    WorkerCrash,
    WorkerTimeout,
)
from .worker import execute_request, worker_main

__all__ = [
    "ADMITTED",
    "DRAINING",
    "SHED",
    "AdmissionController",
    "DegradationPolicy",
    "HTTP_STATUS",
    "PoolStopped",
    "ProcessWorker",
    "ProtocolError",
    "SCHEMA",
    "STATUS_CODES",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServerThread",
    "Supervisor",
    "WorkerCrash",
    "WorkerTimeout",
    "classify",
    "execute_request",
    "http_status",
    "response",
    "run_server",
    "validate_request",
    "worker_main",
]
