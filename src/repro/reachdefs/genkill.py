"""Locally computable sets: ``Gen``, ``Kill``, ``ParallelKill``, ``OtherDefs``.

Paper §5: "as in the sequential dataflow problem, Kill and ParallelKill can
be computed directly and need not be computed using an iterative
algorithm."

Definitions (for node ``n``; ``defs(v)`` is all definitions of ``v``):

* ``Gen(n)``          — downward-exposed definitions of ``n`` (the last
  definition of each variable assigned in ``n`` — earlier same-block
  definitions never escape the block);
* ``OtherDefs(n)``    — definitions *outside* ``n`` of variables that also
  have definitions *inside* ``n`` (paper §6);
* ``Kill(n)``         — the subset of ``OtherDefs(n)`` whose node cannot
  execute concurrently with ``n``;
* ``ParallelKill(n)`` — the subset of ``OtherDefs(n)`` whose node *may*
  execute concurrently with ``n``.

So ``Kill(n) ⊎ ParallelKill(n) = OtherDefs(n)`` by construction.  On a
sequential CFG, ``ParallelKill`` is empty and ``Kill`` coincides with the
classical kill set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet

from ..ir.defs import Definition
from ..obs import get_metrics
from ..pfg.concurrency import concurrent
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode

DefSet = FrozenSet[Definition]


@dataclass
class GenKillInfo:
    """Per-node local sets, as frozensets of :class:`Definition`."""

    gen: Dict[PFGNode, DefSet]
    kill: Dict[PFGNode, DefSet]
    parallel_kill: Dict[PFGNode, DefSet]
    other_defs: Dict[PFGNode, DefSet]
    #: definition -> node containing it
    def_node: Dict[Definition, PFGNode]


def compute_genkill(graph: ParallelFlowGraph) -> GenKillInfo:
    """Compute all local sets for every node of ``graph``.

    Memoized **on the graph object** (``graph._genkill_memo``): the
    tables are keyed by node identity, so they are only meaningful for
    the exact graph they were computed from — a digest-keyed cache would
    hand tables whose keys belong to a *different* build of the same
    program.  The graph's ``_invalidate`` hook drops the memo on any
    structural mutation.  Hit/miss totals land in ``cache.genkill.*``
    when an observability session is installed.
    """
    memo = getattr(graph, "_genkill_memo", None)
    metrics = get_metrics()
    if memo is not None:
        if metrics.enabled:
            metrics.inc("cache.genkill.hits")
        return memo
    if metrics.enabled:
        metrics.inc("cache.genkill.misses")
    def_node: Dict[Definition, PFGNode] = {}
    for node in graph.nodes:
        for d in node.defs:
            def_node[d] = node

    gen: Dict[PFGNode, DefSet] = {}
    kill: Dict[PFGNode, DefSet] = {}
    parallel_kill: Dict[PFGNode, DefSet] = {}
    other_defs: Dict[PFGNode, DefSet] = {}

    for node in graph.nodes:
        gen[node] = frozenset(node.gen_defs())
        own = set(node.defs)
        defined_vars = {d.var for d in node.defs}
        others = set()
        par = set()
        seq = set()
        for var in defined_vars:
            for d in graph.defs.of_var(var):
                if d in own:
                    continue
                others.add(d)
                if concurrent(def_node[d], node):
                    par.add(d)
                else:
                    seq.add(d)
        other_defs[node] = frozenset(others)
        kill[node] = frozenset(seq)
        parallel_kill[node] = frozenset(par)

    info = GenKillInfo(
        gen=gen, kill=kill, parallel_kill=parallel_kill, other_defs=other_defs, def_node=def_node
    )
    graph._genkill_memo = info
    return info


def sequential_kill(info: GenKillInfo, node: PFGNode) -> DefSet:
    """The classical (concurrency-blind) kill set — everything in
    ``OtherDefs``.  Used by the sequential equations, including when they
    are (unsoundly) applied to a parallel graph as a baseline."""
    return info.other_defs[node]
