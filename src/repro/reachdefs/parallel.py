"""Reaching definitions across ``Parallel Sections`` (paper §5, Figure 7).

The equation system::

    Out(n)        = (In(n) − Kill(n) − ParallelKill(n)) ∪ Gen(n)
    In(n)         = ⋃_{p∈pred(n)} Out(p) − ⋃_{p∈par_pred(n)} ACCKillout(p)
    ACCKillout(n) = ∅                                              (fork)
                  = ((ACCKillin(n) ∪ Kill(n)) − Gen(n))
                      ∪ (ForkKill(fork(n)) − Out(n))               (join)
                  = (ACCKillin(n) ∪ Kill(n)) − Gen(n)              (else)
    ACCKillin(n)  = ⋃_{par_pred} ACCKillout ∪ ⋂_{seq_pred} ACCKillout
    ForkKill(n)   = (ACCKillin(n) ∪ Kill(n)) − Gen(n)  (fork), ∅ otherwise

Key semantics encoded here (paper §5's three "fundamental concepts"):

* every branch of a fork executes, so a definition from before the
  construct dies at the join if **some** always-executing branch kills it
  (``ACCKillout`` accumulates those kills; the join subtracts them);
* a *conditionally* killed definition survives (the conditional's merge
  intersects the two arms' ``ACCKillout``, dropping the kill);
* definitions in concurrent threads never kill each other
  (``ParallelKill`` is excluded from ``Out`` but also from ``ACCKill``);
  several definitions of one variable reaching a join flags a potential
  anomaly.

``ForkKill`` snapshots the accumulated kills at the fork so the join of a
*nested* construct does not lose outer-construct kill information; it
reaches the join over the fork↔join link (the paper's technical edge) and
is masked by ``− Out(n)`` so definitions that do reach the join are not
reported as killed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..dataflow.bitset import make_backend
from ..dataflow.framework import EquationSystem, SolveStats
from ..dataflow.solver import make_order, solve_round_robin, solve_worklist
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode
from .genkill import GenKillInfo, compute_genkill
from .result import ReachingDefsResult


class ParallelRDSystem(EquationSystem[PFGNode]):
    """Equation system for §5 (no event synchronization).

    Synchronization edges, if present in the graph, are ignored by this
    system (the §6 system handles them); control structure is fully
    honoured.
    """

    system_name = "parallel"

    #: Whether the In equation reads synchronization edges — the flow-edge
    #: family provenance recording follows (§6 subclass overrides).
    provenance_sync_edges = False

    def __init__(
        self,
        graph: ParallelFlowGraph,
        backend: str = "bitset",
        info: Optional[GenKillInfo] = None,
        record_provenance: bool = False,
    ):
        self.graph = graph
        self.wants_provenance = record_provenance
        self._provenance = None
        self.info = info if info is not None else compute_genkill(graph)
        self.ops = make_backend(backend, list(graph.defs))
        ops = self.ops
        self._gen = {n: ops.from_defs(self.info.gen[n]) for n in graph.nodes}
        self._kill = {n: ops.from_defs(self.info.kill[n]) for n in graph.nodes}
        self._parkill = {n: ops.from_defs(self.info.parallel_kill[n]) for n in graph.nodes}
        self._otherdefs = {n: ops.from_defs(self.info.other_defs[n]) for n in graph.nodes}
        # Adjacency, precomputed as lists (hot loop).
        self._all_preds = {n: self._pred_family(n) for n in graph.nodes}
        self._par_preds = {n: graph.par_preds(n) for n in graph.nodes}
        self._seq_preds = {n: graph.seq_preds(n) for n in graph.nodes}
        self.In: Dict[PFGNode, object] = {}
        self.Out: Dict[PFGNode, object] = {}
        self.ACCKillin: Dict[PFGNode, object] = {}
        self.ACCKillout: Dict[PFGNode, object] = {}
        self.ForkKill: Dict[PFGNode, object] = {}

    def _pred_family(self, n: PFGNode) -> List[PFGNode]:
        """``pred(n)`` for the In equation: control predecessors only (the
        synchronized subclass widens this to include sync predecessors)."""
        return self.graph.control_preds(n)

    # -- framework interface ----------------------------------------------

    def nodes(self):
        return self.graph.document_order()

    def initialize(self) -> None:
        empty = self.ops.empty()
        for n in self.graph.nodes:
            self.In[n] = empty
            self.Out[n] = empty
            self.ACCKillin[n] = empty
            self.ACCKillout[n] = empty
            self.ForkKill[n] = empty

    def update(self, n: PFGNode) -> bool:
        return self.update_flow(n) | self.update_kill(n)

    def update_flow(self, n: PFGNode) -> bool:
        """Recompute the ascending half (``In``/``Out``) only.  Monotone
        when the kill layer is held fixed — the stabilized solver's flow
        phase (see :func:`repro.dataflow.solver.solve_stabilized`)."""
        ops = self.ops
        changed = False
        new_in = self._compute_in(n)
        changed |= not ops.equals(new_in, self.In[n])
        self.In[n] = new_in
        new_out = self._compute_out(n)
        changed |= not ops.equals(new_out, self.Out[n])
        self.Out[n] = new_out
        return changed

    def update_kill(self, n: PFGNode) -> bool:
        """Recompute the kill layer (``ACCKillin``/``ForkKill``/
        ``ACCKillout``) only.  Monotone when ``In``/``Out`` are held
        fixed — the stabilized solver's kill phase."""
        ops = self.ops
        changed = False

        new_killin = self._compute_acc_killin(n)
        changed |= not ops.equals(new_killin, self.ACCKillin[n])
        self.ACCKillin[n] = new_killin

        base_kill = ops.union_difference(new_killin, self._kill[n], self._gen[n])

        new_forkkill = base_kill if n.is_fork else ops.empty()
        changed |= not ops.equals(new_forkkill, self.ForkKill[n])
        self.ForkKill[n] = new_forkkill

        if n.is_fork:
            new_killout = ops.empty()
        elif n.is_join:
            assert n.fork is not None
            carried = ops.difference(self.ForkKill[n.fork], self.Out[n])
            new_killout = ops.union(base_kill, carried)
        else:
            new_killout = base_kill
        changed |= not ops.equals(new_killout, self.ACCKillout[n])
        self.ACCKillout[n] = new_killout

        return changed

    def reset_flow(self) -> None:
        empty = self.ops.empty()
        for n in self.graph.nodes:
            self.In[n] = empty
            self.Out[n] = empty

    def reset_kill(self) -> None:
        empty = self.ops.empty()
        for n in self.graph.nodes:
            self.ACCKillin[n] = empty
            self.ACCKillout[n] = empty
            self.ForkKill[n] = empty

    def reset_flow_nodes(self, nodes: Iterable[PFGNode]) -> None:
        """Region-scoped :meth:`reset_flow` for the SCC scheduler — resets
        only the given nodes, leaving upstream (final) regions intact."""
        empty = self.ops.empty()
        for n in nodes:
            self.In[n] = empty
            self.Out[n] = empty

    def reset_kill_nodes(self, nodes: Iterable[PFGNode]) -> None:
        """Region-scoped :meth:`reset_kill` (see :mod:`repro.dataflow.sched`)."""
        empty = self.ops.empty()
        for n in nodes:
            self.ACCKillin[n] = empty
            self.ACCKillout[n] = empty
            self.ForkKill[n] = empty

    # -- stabilized-solver protocol (cycle resolution) -----------------------

    def kill_state(self):
        return {
            "ACCKillin": dict(self.ACCKillin),
            "ACCKillout": dict(self.ACCKillout),
            "ForkKill": dict(self.ForkKill),
        }

    def set_kill_state(self, state) -> None:
        self.ACCKillin.update(state["ACCKillin"])
        self.ACCKillout.update(state["ACCKillout"])
        self.ForkKill.update(state["ForkKill"])

    def meet_values(self, a, b):
        return self.ops.intersection(a, b)

    # -- individual equations (overridden by the synchronized system) -------

    def _compute_in(self, n: PFGNode):
        ops = self.ops
        flow = ops.union_all(self.Out[p] for p in self._all_preds[n])
        par_kills = ops.union_all(self.ACCKillout[p] for p in self._par_preds[n])
        return ops.difference(flow, par_kills)

    def _compute_out(self, n: PFGNode):
        ops = self.ops
        live = ops.difference(ops.difference(self.In[n], self._kill[n]), self._parkill[n])
        return ops.union(live, self._gen[n])

    def _compute_acc_killin(self, n: PFGNode):
        """ACCKillin(n) = ⋃_par ACCKillout ∪ ⋂_seq ACCKillout — but the
        union-over-parallel-predecessors reading is only justified at
        **join** nodes, where every parallel predecessor has executed.
        Elsewhere the predecessors are alternative arrival paths, and a
        kill is unconditional only if it happened on *all* of them.

        The distinction matters for a loop header that is the first block
        of a section: its entry edge is parallel (from the fork) and its
        latch edge sequential; the paper's formula as written would take
        the latch's accumulated kills unguarded — claiming loop-body kills
        even on the zero-iteration path (found by the dynamic oracle; see
        EXPERIMENTS.md Findings).  On every paper example the two readings
        coincide (non-join nodes there have at most one parallel
        predecessor and no mixed families).
        """
        ops = self.ops
        if n.is_join:
            par = ops.union_all(self.ACCKillout[p] for p in self._par_preds[n])
            seq = ops.intersection_all(self.ACCKillout[p] for p in self._seq_preds[n])
            return ops.union(par, seq)
        preds = self._par_preds[n] + self._seq_preds[n]
        return ops.intersection_all(self.ACCKillout[p] for p in preds)

    def dependents(self, n: PFGNode) -> Iterable[PFGNode]:
        out = list(self.graph.control_succs(n))
        if n.is_fork and n.join is not None:
            out.append(n.join)
        return out

    # -- provenance (opt-in; see repro.provenance) --------------------------

    def record_justifications(self):
        """Derive the justification graph from the converged sets (the
        solver's post-convergence hook; see
        :func:`repro.dataflow.solver._finalize_provenance`)."""
        from ..provenance.record import build_justifications

        ops = self.ops
        nodes = self.graph.nodes
        self._provenance = build_justifications(
            self.graph,
            {n: ops.to_frozenset(self.In[n]) for n in nodes},
            {n: ops.to_frozenset(self.Out[n]) for n in nodes},
            self.info.gen,
            include_sync=self.provenance_sync_edges,
            system=self.system_name,
        )
        return self._provenance

    # -- results ---------------------------------------------------------------

    def snapshot(self, nodes=None):
        """Frozenset state per slot; ``nodes`` restricts to a subset —
        region-scoped convergence checks must not pay for materializing
        the whole graph every round."""
        ops = self.ops
        if nodes is None:
            nodes = self.graph.nodes
        return {
            name: {n.name: ops.to_frozenset(slot[n]) for n in nodes}
            for name, slot in (
                ("In", self.In),
                ("Out", self.Out),
                ("ACCKillin", self.ACCKillin),
                ("ACCKillout", self.ACCKillout),
                ("ForkKill", self.ForkKill),
            )
        }

    def to_result(self, stats: SolveStats, known=None) -> ReachingDefsResult:
        """``known`` maps slot name → {node: frozenset} for rows whose
        final values are already materialized (the incremental engine's
        seeded clean regions) — frozenset conversion is skipped there."""
        ops = self.ops
        nodes = self.graph.nodes
        known = known or {}

        def mat(slot_name, values):
            pre = known.get(slot_name)
            if not pre:
                return {n: ops.to_frozenset(values[n]) for n in nodes}
            return {
                n: pre[n] if n in pre else ops.to_frozenset(values[n])
                for n in nodes
            }

        return ReachingDefsResult(
            graph=self.graph,
            info=self.info,
            in_sets=mat("In", self.In),
            out_sets=mat("Out", self.Out),
            acc_killin=mat("ACCKillin", self.ACCKillin),
            acc_killout=mat("ACCKillout", self.ACCKillout),
            fork_kill=mat("ForkKill", self.ForkKill),
            stats=stats,
            system=self.system_name,
            provenance=self._provenance,
        )


def run_solver(
    system, graph, order: str, solver: str, snapshot_passes: bool, budget=None, dense=None
):
    """Dispatch a reaching-definitions system to a solver.

    ``solver``:

    * ``"stabilized"`` (default) — deterministic, visit-order-independent
      least-fixpoint phases (:func:`~repro.dataflow.solver.solve_stabilized`);
      most precise.
    * ``"round-robin"`` — the paper's chaotic Gauss–Seidel sweeps (use
      ``order="document"`` + ``snapshot_passes=True`` to reproduce the
      paper's per-iteration tables).
    * ``"worklist"`` — classic worklist over the same equations.
    * ``"scc"`` — sparse SCC-scheduled evaluation
      (:func:`~repro.dataflow.sched.solve_scc`): acyclic regions once,
      cyclic regions stabilized locally; same fixpoints, far fewer
      updates on mostly-acyclic graphs.
    * ``"scc-dense"`` — scc with the vectorized region evaluator forced
      on for every eligible cyclic region (byte-identical fixpoints; see
      :mod:`repro.dataflow.dense`).

    ``budget`` (a :class:`~repro.dataflow.budget.ResourceBudget`) guards
    the run; see :mod:`repro.dataflow.budget`.  ``dense`` (a
    :class:`~repro.dataflow.dense.DenseConfig`) tunes dense-region
    dispatch for the scc engines — with ``solver="scc"`` it opts cyclic
    regions into dense solving under its thresholds; with
    ``"scc-dense"`` it overrides the forced-on default (e.g. to set
    ``workers``).
    """
    from ..dataflow.dense import DenseConfig
    from ..dataflow.sched import solve_scc
    from ..dataflow.solver import solve_stabilized

    nodes = make_order(graph, order)
    if solver == "stabilized":
        if snapshot_passes:
            raise ValueError(
                "snapshot_passes records the paper's per-sweep iterates; "
                "use solver='round-robin' for that"
            )
        return solve_stabilized(system, nodes, order_name=order, budget=budget)
    if solver in ("scc", "scc-dense"):
        if snapshot_passes:
            raise ValueError(
                "snapshot_passes records per-sweep iterates, but the scc "
                "solver has no global sweeps; use solver='round-robin'"
            )
        if solver == "scc-dense" and dense is None:
            dense = DenseConfig(mode="always")
        return solve_scc(
            system, nodes, order_name=f"{solver}/{order}", budget=budget, dense=dense
        )
    if solver == "round-robin":
        return solve_round_robin(
            system, nodes, order_name=order, snapshot_passes=snapshot_passes, budget=budget
        )
    if solver == "worklist":
        return solve_worklist(system, nodes, order_name=f"worklist/{order}", budget=budget)
    raise ValueError(f"unknown solver {solver!r}")


def solve_parallel(
    graph: ParallelFlowGraph,
    backend: str = "bitset",
    order: str = "document",
    solver: str = "stabilized",
    snapshot_passes: bool = False,
    budget=None,
    record_provenance: bool = False,
    dense=None,
) -> ReachingDefsResult:
    """Run the §5 parallel reaching-definitions system to fixpoint.

    ``record_provenance=True`` derives the justification graph after
    convergence and attaches it as ``result.provenance``
    (:mod:`repro.provenance`).  ``dense`` tunes dense-region dispatch for
    the scc engines (see :func:`run_solver`)."""
    system = ParallelRDSystem(graph, backend=backend, record_provenance=record_provenance)
    stats = run_solver(system, graph, order, solver, snapshot_passes, budget=budget, dense=dense)
    return system.to_result(stats)
