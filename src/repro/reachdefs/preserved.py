"""Preserved-set approximation (paper §6; Callahan & Subhlok [3]).

``p ∈ Preserved(n)`` iff in every execution in which both ``p`` and ``n``
execute, ``p`` completes before ``n`` begins.  Exact computation is
Co-NP-hard; the paper plugs a conservative data-flow approximation into its
synchronized equations.  We implement the approximation spelled out in
DESIGN.md §2:

1. **Forward control ancestors.**  Over forward (non-back) sequential and
   parallel control edges, ``Preserved(n) ⊇ ⋃_{p ∈ fwd_pred(n)}
   (Preserved(p) ∪ {p})``.  Union — not intersection — because the
   definition is vacuous for nodes on the branch not taken: both arms of a
   conditional are preserved at the merge.  Back edges are excluded: the
   relation is per construct-instance (one loop iteration), exactly how the
   paper reads its Figure 3 example.

2. **Posts at a wait.**  For a wait node ``w`` on event ``e`` with posts
   ``P``:

   * whichever post released ``w`` has completed, so everything common to
     all posts has: add ``⋂_{p∈P} (Preserved(p) ∪ {p})``;
   * a post ``p`` that is *mutually exclusive* with every other post in
     ``P`` is, when executed, the unique possible releaser, hence itself
     preserved: add ``{p}``.

Both rules only ever add nodes that are genuinely ordered before ``w``
(soundness is property-tested against interpreter traces in
``tests/property/test_preserved_sound.py``).  The rules reproduce the
paper's ``Preserved(8) = {Entry, 1, 2, 3, 4, 5, 7}`` for Figure 3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional

from ..dataflow.budget import NonConvergenceError, ResourceBudget, check_budget
from ..dataflow.framework import SolveStats
from ..pfg.concurrency import mutually_exclusive
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode

PreservedMap = Mapping[PFGNode, FrozenSet[PFGNode]]


@dataclass
class PreservedResult:
    """Preserved sets plus iteration metadata."""

    preserved: Dict[PFGNode, FrozenSet[PFGNode]]
    passes: int

    def __getitem__(self, node: PFGNode) -> FrozenSet[PFGNode]:
        return self.preserved[node]

    def names(self, node: PFGNode) -> FrozenSet[str]:
        return frozenset(p.name for p in self.preserved[node])


class _PreservedSnapshot:
    """Adapter handing :func:`~repro.dataflow.budget.check_budget` a
    name-keyed copy of the partial Preserved sets."""

    def __init__(self, preserved: Dict[PFGNode, FrozenSet[PFGNode]]):
        self._preserved = preserved

    def snapshot(self):
        return {
            "Preserved": {
                n.name: frozenset(p.name for p in s) for n, s in self._preserved.items()
            }
        }


def compute_preserved(
    graph: ParallelFlowGraph,
    max_passes: int = 1000,
    budget: Optional[ResourceBudget] = None,
) -> PreservedResult:
    """Fixpoint of the approximation above (monotone, so round-robin over
    reverse postorder converges quickly — one pass for DAGs without sync,
    a few with post/wait chains).

    Guarded like the solvers: exhausting ``max_passes`` (or the optional
    ``budget``) raises a typed
    :class:`~repro.dataflow.budget.NonConvergenceError` carrying iteration
    stats and the partial Preserved sets, never a silent partial result.
    """
    if budget is not None:
        budget.start()
    order = graph.reverse_postorder()
    preserved: Dict[PFGNode, FrozenSet[PFGNode]] = {n: frozenset() for n in graph.nodes}

    # Precompute, per wait node, which posts are sole-releaser candidates.
    sole_releaser: Dict[PFGNode, List[PFGNode]] = {}
    posts_for_wait: Dict[PFGNode, List[PFGNode]] = {}
    for wait in graph.waits:
        assert wait.wait_event is not None
        posts = graph.posts_of_event.get(wait.wait_event, [])
        posts_for_wait[wait] = posts
        sole_releaser[wait] = [
            p
            for p in posts
            if all(q is p or mutually_exclusive(graph, p, q) for q in posts)
        ]

    passes = 0
    changed = True
    shim = _PreservedSnapshot(preserved)
    stats = SolveStats(order="preserved/rpo")
    while changed:
        if passes >= max_passes:
            raise NonConvergenceError(
                stats,
                reason=f"preserved-set pass cap max_passes={max_passes} hit",
                snapshot=shim.snapshot(),
            )
        if budget is not None:
            budget.charge_pass()
            budget.charge_updates(len(order))
            check_budget(budget, stats, shim)
        passes += 1
        stats.passes = passes
        stats.node_updates += len(order)
        changed = False
        for node in order:
            acc = set(preserved[node])
            for p in graph.forward_control_preds(node):
                acc.add(p)
                acc |= preserved[p]
            if node.is_wait:
                posts = posts_for_wait[node]
                if posts:
                    common: Optional[set] = None
                    for p in posts:
                        through = preserved[p] | {p}
                        common = set(through) if common is None else (common & through)
                    acc |= common or set()
                    acc.update(sole_releaser[node])
            # Parallel-do iterations: a block sharing a parallel-do body
            # with ``node`` runs once per iteration, and another
            # iteration's instance may still be running when this one's
            # ``node`` begins — forward ancestry within the body orders
            # only the same iteration, which is weaker than Preserved's
            # all-executions claim.  Drop such blocks (including ``node``
            # itself).  Blocks outside the construct complete before every
            # iteration and stay.
            if node.pardo_ids:
                shared = set(node.pardo_ids)
                acc = {m for m in acc if not (shared & set(m.pardo_ids))}
            new = frozenset(acc)
            if new != preserved[node]:
                preserved[node] = new
                changed = True
    return PreservedResult(preserved=preserved, passes=passes)


def empty_preserved(graph: ParallelFlowGraph) -> PreservedResult:
    """The "no ordering information" mode (paper §6's worst case): all
    Preserved sets empty.  Synchronization effects are then lost at merges
    — conservative but still sound."""
    return PreservedResult(preserved={n: frozenset() for n in graph.nodes}, passes=0)


def resolve_preserved(
    graph: ParallelFlowGraph,
    mode: str = "approx",
    oracle: Optional[PreservedMap] = None,
    budget: Optional[ResourceBudget] = None,
) -> PreservedResult:
    """Resolve a user-facing ``preserved=`` parameter.

    ``"approx"`` — the approximation above (default);
    ``"none"``   — empty sets (ablation / worst case);
    ``"oracle"`` — caller-supplied sets (tests), via ``oracle``.
    """
    if mode == "approx":
        return compute_preserved(graph, budget=budget)
    if mode == "none":
        return empty_preserved(graph)
    if mode == "oracle":
        if oracle is None:
            raise ValueError("preserved mode 'oracle' requires an oracle mapping")
        full = {n: frozenset(oracle.get(n, frozenset())) for n in graph.nodes}
        return PreservedResult(preserved=full, passes=0)
    raise ValueError(f"unknown preserved mode {mode!r}; choose approx, none or oracle")
