"""Reaching definitions with event synchronization (paper §6, Figure 10).

Extends the §5 system with synchronization edges and the ``SynchPass`` set::

    SynchPass(n) = ⋃_{p ∈ synch_pred(n) ∧ p ∈ Preserved(n)} Out(p)   (wait)
                 = ⋃_{par_pred} SynchPass ∪ ⋂_{seq_pred} SynchPass   (else)

    Out(n) = ((In(n) − Kill(n) − ParallelKill(n)) ∪ Gen(n))
               − (OtherDefs(n) ∩ SynchPass(n))

    In(n)  = ⋃_{p∈pred(n)} Out(p)                 (pred = seq ∪ par ∪ sync)
               − ⋃_{p∈par_pred(n)} ACCKillout(p)
               − ⋂_{p∈synch_pred(n)} ACCKillout(p)

    ACCKillin(n) = ⋃_{par_pred} ACCKillout ∪ ⋂_{seq_pred} ACCKillout
                     ∪ (OtherDefs(n) ∩ SynchPass(n))

    ACCKillout / ForkKill — unchanged from §5.

Reading of the equations (paper §6):

* A synchronization edge ``post → wait`` carries values: the wait's ``In``
  unions the posts' ``Out`` like any predecessor, so conservatively a
  waiting thread sees what posters produced.
* When the Preserved approximation proves a post *always* completes before
  the wait begins, ``SynchPass`` records the posted definitions as having
  definitely occurred.  Definitions of variables the waiting thread itself
  redefines (``OtherDefs ∩ SynchPass``) are therefore *ordered before* that
  redefinition: they are accumulated into ``ACCKillin`` so the eventual
  join removes them (this is how ``x4``/``x5`` die before node 11 in
  Figure 3), and excluded from ``Out``.
* With *no* Preserved information (``preserved="none"``), ``SynchPass`` is
  empty, the ordering effect vanishes, and merges conservatively report
  every incoming definition — the paper's worst case: still sound, just
  fewer optimization opportunities.

The SynchPass ordering filter (a reproduction refinement)
---------------------------------------------------------

Taken literally, ``SynchPass(w) = ⋃ Out(p)`` over preserved posts admits
*loop-carried* tokens: a definition ``d`` written in a section concurrent
with ``w`` circulates around an enclosing loop, enters ``In(p)`` and hence
``Out(p)``, and is then treated as "definitely executed before ``w``" —
which its *current-iteration* instance is not.  Two consequences, both
observed on generator-produced programs (see
``tests/regression/test_synch_oscillation.py``):

* the accumulated kill wrongly removes ``d`` at the join (unsound for the
  racy variable involved), and
* the subtraction feeds back on itself around the loop, so the equations
  have no fixpoint at all — ``In``/``ACCKill`` oscillate forever.

The paper's justification for SynchPass ("we know those definitions must
have occurred before the synchronization occurred") only holds for tokens
whose **defining node is itself ordered before the wait**.  We therefore
filter::

    SynchPass(w) = ⋃_{p ∈ synch_pred(w) ∧ p ∈ Preserved(w)} Out(p)
                     ∩ {d : node(d) ∈ Preserved(w)}

On every worked example in the paper the filter changes nothing (all the
definitions involved sit in Preserved(8)); on adversarial programs it
restores both soundness and convergence.  ``filter_synch_pass=False``
selects the literal equations for study.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..dataflow.framework import SolveStats
from .parallel import run_solver
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode
from .genkill import GenKillInfo
from .parallel import ParallelRDSystem
from .preserved import PreservedResult, resolve_preserved
from .result import ReachingDefsResult


class SynchRDSystem(ParallelRDSystem):
    """Equation system for §6 (Figure 10)."""

    system_name = "synch"

    #: §6's In equation reads sync predecessors, so provenance flow edges
    #: include synchronization edges.
    provenance_sync_edges = True

    def __init__(
        self,
        graph: ParallelFlowGraph,
        preserved: PreservedResult,
        backend: str = "bitset",
        info: Optional[GenKillInfo] = None,
        filter_synch_pass: bool = True,
        record_provenance: bool = False,
    ):
        super().__init__(
            graph, backend=backend, info=info, record_provenance=record_provenance
        )
        self.preserved = preserved
        self.filter_synch_pass = filter_synch_pass
        self._sync_preds = {n: graph.sync_preds(n) for n in graph.nodes}
        #: sync predecessors that the Preserved approximation orders before
        #: the wait — the only ones SynchPass reads.
        self._preserved_sync_preds: Dict[PFGNode, List[PFGNode]] = {
            n: [p for p in self._sync_preds[n] if p in preserved[n]] for n in graph.nodes
        }
        #: per wait node: definitions whose defining node is ordered before
        #: it (the SynchPass ordering filter; see module docstring).
        self._ordered_defs: Dict[PFGNode, object] = {}
        for n in graph.nodes:
            if n.is_wait:
                allowed = [
                    d for d in graph.defs if self.info.def_node[d] in preserved[n]
                ]
                self._ordered_defs[n] = self.ops.from_defs(allowed)
        self.SynchPass: Dict[PFGNode, object] = {}

    def _pred_family(self, n: PFGNode) -> List[PFGNode]:
        # §6 In: pred(n) includes synchronization predecessors.
        return self.graph.all_preds(n)

    def initialize(self) -> None:
        super().initialize()
        empty = self.ops.empty()
        for n in self.graph.nodes:
            self.SynchPass[n] = empty

    def update_kill(self, n: PFGNode) -> bool:
        # SynchPass belongs to the kill layer: it feeds ACCKillin (and the
        # provably-redundant Out subtraction) and is monotone given frozen
        # Out sets.
        ops = self.ops
        new_sp = self._compute_synch_pass(n)
        changed = not ops.equals(new_sp, self.SynchPass[n])
        self.SynchPass[n] = new_sp
        return super().update_kill(n) | changed

    def reset_kill(self) -> None:
        super().reset_kill()
        empty = self.ops.empty()
        for n in self.graph.nodes:
            self.SynchPass[n] = empty

    def reset_kill_nodes(self, nodes: Iterable[PFGNode]) -> None:
        nodes = list(nodes)
        super().reset_kill_nodes(nodes)
        empty = self.ops.empty()
        for n in nodes:
            self.SynchPass[n] = empty

    def kill_state(self):
        state = super().kill_state()
        state["SynchPass"] = dict(self.SynchPass)
        return state

    def set_kill_state(self, state) -> None:
        super().set_kill_state(state)
        self.SynchPass.update(state["SynchPass"])

    # -- equation overrides -------------------------------------------------

    def _compute_synch_pass(self, n: PFGNode):
        ops = self.ops
        if n.is_wait:
            passed = ops.union_all(self.Out[p] for p in self._preserved_sync_preds[n])
            if self.filter_synch_pass:
                passed = ops.intersection(passed, self._ordered_defs[n])
            return passed
        # Union over parallel predecessors only at joins (all of them ran);
        # elsewhere the predecessors are alternative paths — a definition
        # has "definitely occurred" only if every arrival path says so.
        # Same mixed-predecessor refinement as ACCKillin (see parallel.py).
        if n.is_join:
            par = ops.union_all(self.SynchPass[p] for p in self._par_preds[n])
            seq = ops.intersection_all(self.SynchPass[p] for p in self._seq_preds[n])
            return ops.union(par, seq)
        preds = self._par_preds[n] + self._seq_preds[n]
        return ops.intersection_all(self.SynchPass[p] for p in preds)

    def _compute_in(self, n: PFGNode):
        ops = self.ops
        flow = ops.union_all(self.Out[p] for p in self._all_preds[n])
        par_kills = ops.union_all(self.ACCKillout[p] for p in self._par_preds[n])
        sync_kills = ops.intersection_all(self.ACCKillout[p] for p in self._sync_preds[n])
        return ops.difference(ops.difference(flow, par_kills), sync_kills)

    def _compute_out(self, n: PFGNode):
        base = super()._compute_out(n)
        ops = self.ops
        occurred = ops.intersection(self._otherdefs[n], self.SynchPass[n])
        return ops.difference(base, occurred)

    def _compute_acc_killin(self, n: PFGNode):
        base = super()._compute_acc_killin(n)
        ops = self.ops
        occurred = ops.intersection(self._otherdefs[n], self.SynchPass[n])
        return ops.union(base, occurred)

    def dependents(self, n: PFGNode) -> Iterable[PFGNode]:
        out = list(super().dependents(n))
        out.extend(self.graph.succs(n))  # includes sync successors
        return out

    # -- results --------------------------------------------------------------

    def snapshot(self, nodes=None):
        snap = super().snapshot(nodes)
        ops = self.ops
        if nodes is None:
            nodes = self.graph.nodes
        snap["SynchPass"] = {n.name: ops.to_frozenset(self.SynchPass[n]) for n in nodes}
        return snap

    def to_result(self, stats: SolveStats) -> ReachingDefsResult:
        result = super().to_result(stats)
        ops = self.ops
        result.synch_pass = {n: ops.to_frozenset(self.SynchPass[n]) for n in self.graph.nodes}
        result.preserved = self.preserved
        result.system = self.system_name
        return result


def solve_synch(
    graph: ParallelFlowGraph,
    backend: str = "bitset",
    order: str = "document",
    solver: str = "stabilized",
    preserved: str = "approx",
    preserved_oracle=None,
    snapshot_passes: bool = False,
    filter_synch_pass: bool = True,
    budget=None,
    record_provenance: bool = False,
    dense=None,
) -> ReachingDefsResult:
    """Run the §6 synchronized reaching-definitions system to fixpoint.

    ``preserved`` selects the execution-order information source:
    ``"approx"`` (default, DESIGN.md §2), ``"none"`` (worst case), or
    ``"oracle"`` with ``preserved_oracle`` a node→set mapping.
    ``filter_synch_pass=False`` selects the paper's literal SynchPass
    equation (which can oscillate on loop-carried tokens — see the module
    docstring).  ``solver`` as in :func:`~repro.reachdefs.parallel.run_solver`:
    ``"stabilized"`` (default, deterministic) or the paper's
    ``"round-robin"`` / ``"worklist"`` chaotic iteration.  ``budget`` (a
    :class:`~repro.dataflow.budget.ResourceBudget`) guards the *whole*
    computation — the Preserved approximation and the equation solve
    draw from the same allowance.
    """
    pres = resolve_preserved(graph, mode=preserved, oracle=preserved_oracle, budget=budget)
    system = SynchRDSystem(
        graph,
        preserved=pres,
        backend=backend,
        filter_synch_pass=filter_synch_pass,
        record_provenance=record_provenance,
    )
    stats = run_solver(system, graph, order, solver, snapshot_passes, budget=budget, dense=dense)
    return system.to_result(stats)
