"""Maximally conservative reaching definitions — the degradation floor.

When the precise systems cannot be trusted (malformed graph) or cannot be
afforded (budget exhausted), the driver's degradation ladder
(:mod:`repro.robust.degrade`) falls back to this system::

    Out(n) = In(n) ∪ Gen(n)
    In(n)  = ⋃_{p ∈ pred(n)} Out(p)      (pred = seq ∪ par ∪ sync)

No kill sets of any kind: definitions only accumulate along edges, so the
system is plainly monotone over a join-semilattice and converges in
O(graph diameter) round-robin passes — there is no cheaper sound analysis
to fall back *to*.

Soundness argument (why this over-approximates every execution): every
dynamic value flow the interpreter can realize travels along graph edges —
sequential steps along SEQ edges, copy-in at a fork and copy-out at a
join along PAR edges, and a wait absorbing a poster's snapshot along the
SYNC edge.  An analysis that propagates *every* definition across *every*
edge kind and never removes one therefore covers every flow; what it
gives up is exactly what the paper's machinery buys — kills at joins
(``ACCKill``), cross-thread kill exclusion bookkeeping, and the
Preserved-gated synchronization kills — i.e. precision, never safety.
The property is exercised by the degradation tests
(``tests/unit/test_degradation.py``) against the dynamic oracle.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..dataflow.bitset import make_backend
from ..dataflow.framework import EquationSystem, SolveStats
from ..dataflow.solver import make_order, solve_round_robin
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode
from .genkill import GenKillInfo, compute_genkill
from .result import ReachingDefsResult


class ConservativeRDSystem(EquationSystem[PFGNode]):
    """Accumulate-only reaching definitions over all edge kinds."""

    system_name = "conservative"

    def __init__(
        self,
        graph: ParallelFlowGraph,
        backend: str = "bitset",
        info: Optional[GenKillInfo] = None,
    ):
        self.graph = graph
        self.info = info if info is not None else compute_genkill(graph)
        self.ops = make_backend(backend, list(graph.defs))
        self._gen = {n: self.ops.from_defs(self.info.gen[n]) for n in graph.nodes}
        self._preds = {n: graph.all_preds(n) for n in graph.nodes}
        self._in: Dict[PFGNode, object] = {}
        self._out: Dict[PFGNode, object] = {}

    def nodes(self):
        return self.graph.document_order()

    def initialize(self) -> None:
        empty = self.ops.empty()
        for n in self.graph.nodes:
            self._in[n] = empty
            self._out[n] = empty

    def update(self, n: PFGNode) -> bool:
        ops = self.ops
        new_in = ops.union_all(self._out[p] for p in self._preds[n])
        new_out = ops.union(new_in, self._gen[n])
        changed = not ops.equals(new_in, self._in[n]) or not ops.equals(new_out, self._out[n])
        self._in[n] = new_in
        self._out[n] = new_out
        return changed

    def dependents(self, n: PFGNode) -> Iterable[PFGNode]:
        return self.graph.succs(n)

    def snapshot(self):
        ops = self.ops
        return {
            "In": {n.name: ops.to_frozenset(self._in[n]) for n in self.graph.nodes},
            "Out": {n.name: ops.to_frozenset(self._out[n]) for n in self.graph.nodes},
        }

    def to_result(self, stats: SolveStats) -> ReachingDefsResult:
        ops = self.ops
        return ReachingDefsResult(
            graph=self.graph,
            info=self.info,
            in_sets={n: ops.to_frozenset(self._in[n]) for n in self.graph.nodes},
            out_sets={n: ops.to_frozenset(self._out[n]) for n in self.graph.nodes},
            stats=stats,
            system=self.system_name,
        )


def solve_conservative(
    graph: ParallelFlowGraph,
    backend: str = "bitset",
    order: str = "document",
    budget=None,
) -> ReachingDefsResult:
    """Run the accumulate-only system to fixpoint.

    Deliberately *not* budgeted by default: this is the analysis the
    ladder runs when everything else has failed, and its convergence is
    bounded by the graph diameter.  A ``budget`` may still be passed for
    symmetry (e.g. to bound a direct caller).
    """
    system = ConservativeRDSystem(graph, backend=backend)
    nodes = make_order(graph, order)
    stats = solve_round_robin(system, nodes, order_name=order, budget=budget)
    return system.to_result(stats)
