"""Result container for reaching-definitions analyses.

Wraps the per-node fixpoint sets (as plain frozensets of
:class:`~repro.ir.defs.Definition`) together with iteration statistics,
and provides the queries optimization clients need: definitions reaching a
use (ud-chains), definitions of a variable reaching a block, and
paper-style set printing keyed by block name.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple, Union

from ..dataflow.framework import SolveStats
from ..ir.defs import Definition, Use
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode
from .genkill import GenKillInfo
from .preserved import PreservedResult

DefSet = FrozenSet[Definition]
NodeRef = Union[PFGNode, str]


@dataclass
class ReachingDefsResult:
    """Fixpoint of one of the paper's equation systems.

    ``acc_killin``/``acc_killout``/``fork_kill`` are ``None`` for the
    sequential system; ``synch_pass``/``preserved`` are ``None`` unless the
    synchronized system ran.
    """

    graph: ParallelFlowGraph
    info: GenKillInfo
    in_sets: Dict[PFGNode, DefSet]
    out_sets: Dict[PFGNode, DefSet]
    acc_killin: Optional[Dict[PFGNode, DefSet]] = None
    acc_killout: Optional[Dict[PFGNode, DefSet]] = None
    fork_kill: Optional[Dict[PFGNode, DefSet]] = None
    synch_pass: Optional[Dict[PFGNode, DefSet]] = None
    preserved: Optional[PreservedResult] = None
    stats: SolveStats = field(default_factory=SolveStats)
    system: str = ""
    #: Justification graph (:class:`repro.provenance.JustificationGraph`)
    #: when the solve ran with ``record_provenance=True``; ``None``
    #: otherwise (build lazily via :func:`repro.provenance.ensure_provenance`).
    #: Typed ``object`` to keep this module import-cycle-free.
    provenance: Optional[object] = None

    # -- node resolution -----------------------------------------------------

    def _node(self, ref: NodeRef) -> PFGNode:
        return self.graph.node(ref) if isinstance(ref, str) else ref

    # -- set accessors (paper names) ----------------------------------------

    def In(self, ref: NodeRef) -> DefSet:
        return self.in_sets[self._node(ref)]

    def Out(self, ref: NodeRef) -> DefSet:
        return self.out_sets[self._node(ref)]

    def Gen(self, ref: NodeRef) -> DefSet:
        return self.info.gen[self._node(ref)]

    def Kill(self, ref: NodeRef) -> DefSet:
        return self.info.kill[self._node(ref)]

    def ParallelKill(self, ref: NodeRef) -> DefSet:
        return self.info.parallel_kill[self._node(ref)]

    def OtherDefs(self, ref: NodeRef) -> DefSet:
        return self.info.other_defs[self._node(ref)]

    def ACCKillin(self, ref: NodeRef) -> DefSet:
        assert self.acc_killin is not None, f"{self.system} computes no ACCKill sets"
        return self.acc_killin[self._node(ref)]

    def ACCKillout(self, ref: NodeRef) -> DefSet:
        assert self.acc_killout is not None, f"{self.system} computes no ACCKill sets"
        return self.acc_killout[self._node(ref)]

    def ForkKill(self, ref: NodeRef) -> DefSet:
        assert self.fork_kill is not None, f"{self.system} computes no ForkKill sets"
        return self.fork_kill[self._node(ref)]

    def SynchPass(self, ref: NodeRef) -> DefSet:
        assert self.synch_pass is not None, f"{self.system} computes no SynchPass sets"
        return self.synch_pass[self._node(ref)]

    def Preserved(self, ref: NodeRef) -> FrozenSet[PFGNode]:
        assert self.preserved is not None, f"{self.system} computes no Preserved sets"
        return self.preserved[self._node(ref)]

    # -- name-based views (golden tests) ---------------------------------------

    def in_names(self, ref: NodeRef) -> FrozenSet[str]:
        return frozenset(d.name for d in self.In(ref))

    def out_names(self, ref: NodeRef) -> FrozenSet[str]:
        return frozenset(d.name for d in self.Out(ref))

    def set_names(self, which: str, ref: NodeRef) -> FrozenSet[str]:
        """Generic name view: ``which`` is one of In/Out/Gen/Kill/
        ParallelKill/ACCKillin/ACCKillout/ForkKill/SynchPass."""
        return frozenset(d.name for d in getattr(self, which)(ref))

    # -- client queries ------------------------------------------------------------

    def reaching(self, ref: NodeRef, var: str) -> DefSet:
        """Definitions of ``var`` reaching the *start* of the block."""
        return frozenset(d for d in self.In(ref) if d.var == var)

    def reaching_use(self, use: Use) -> DefSet:
        """Definitions reaching a specific use (intra-block defs considered:
        a same-block definition before the use supersedes inflowing ones)."""
        node = self._node(use.site)
        local = node.local_def_before(use.var, use.ordinal)
        if local is not None:
            return frozenset((local,))
        return self.reaching(node, use.var)

    def ud_chains(self) -> Dict[Use, DefSet]:
        """Use-definition chains for every use in the program."""
        chains: Dict[Use, DefSet] = {}
        for node in self.graph.nodes:
            for use in node.uses():
                chains[use] = self.reaching_use(use)
        return chains

    def du_chains(self) -> Dict[Definition, Tuple[Use, ...]]:
        """Definition-use chains (inverse of :meth:`ud_chains`)."""
        out: Dict[Definition, List[Use]] = {d: [] for d in self.graph.defs}
        for use, defs in self.ud_chains().items():
            for d in defs:
                out[d].append(use)
        return {d: tuple(uses) for d, uses in out.items()}

    # -- reporting -------------------------------------------------------------------

    def row(self, ref: NodeRef) -> Dict[str, FrozenSet[str]]:
        """All sets of one block, by paper column name (for table output)."""
        node = self._node(ref)
        row: Dict[str, FrozenSet[str]] = {
            "Gen": self.set_names("Gen", node),
            "Kill": self.set_names("Kill", node),
            "In": self.set_names("In", node),
            "Out": self.set_names("Out", node),
        }
        if self.acc_killin is not None:
            row["ParKill"] = self.set_names("ParallelKill", node)
            row["ACCKillin"] = self.set_names("ACCKillin", node)
            row["ACCKillout"] = self.set_names("ACCKillout", node)
            row["ForkKill"] = self.set_names("ForkKill", node)
        if self.synch_pass is not None:
            row["SynchPass"] = self.set_names("SynchPass", node)
        return row
