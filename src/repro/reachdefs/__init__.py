"""Reaching definitions for explicitly parallel programs — the paper's
three equation systems plus the Preserved-set approximation."""

from .conservative import ConservativeRDSystem, solve_conservative
from .genkill import DefSet, GenKillInfo, compute_genkill, sequential_kill
from .parallel import ParallelRDSystem, solve_parallel
from .preserved import (
    PreservedResult,
    compute_preserved,
    empty_preserved,
    resolve_preserved,
)
from .result import ReachingDefsResult
from .sequential import SequentialRDSystem, solve_sequential
from .synch import SynchRDSystem, solve_synch

__all__ = [
    "ConservativeRDSystem",
    "solve_conservative",
    "DefSet",
    "GenKillInfo",
    "compute_genkill",
    "sequential_kill",
    "ParallelRDSystem",
    "solve_parallel",
    "PreservedResult",
    "compute_preserved",
    "empty_preserved",
    "resolve_preserved",
    "ReachingDefsResult",
    "SequentialRDSystem",
    "solve_sequential",
    "SynchRDSystem",
    "solve_synch",
]
