"""Sequential reaching definitions (paper §2).

The classical two-equation monotone system::

    Out(n) = (In(n) − Kill(n)) ∪ Gen(n)
    In(n)  = ⋃_{p ∈ pred(n)} Out(p)

with ``In`` initialized to the empty set everywhere (the least solution).
``Kill`` here is the classical, concurrency-blind kill set — all other
definitions of variables defined in ``n``.  On a sequential CFG this is the
textbook analysis (Table 1); applied to a *parallel* graph it is the naive
baseline the paper improves on: parallel edges are treated like sequential
ones, so the parallel-merge kill rule and cross-thread effects are missed.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from ..dataflow.bitset import make_backend
from ..dataflow.framework import EquationSystem, SolveStats
from ..dataflow.solver import make_order, solve_round_robin, solve_worklist
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode
from .genkill import GenKillInfo, compute_genkill
from .result import ReachingDefsResult


class SequentialRDSystem(EquationSystem[PFGNode]):
    """Equation system for §2; works over any set backend."""

    def __init__(
        self,
        graph: ParallelFlowGraph,
        backend: str = "bitset",
        info: Optional[GenKillInfo] = None,
        record_provenance: bool = False,
    ):
        self.graph = graph
        self.wants_provenance = record_provenance
        self._provenance = None
        self.info = info if info is not None else compute_genkill(graph)
        self.ops = make_backend(backend, list(graph.defs))
        ops = self.ops
        self._gen = {n: ops.from_defs(self.info.gen[n]) for n in graph.nodes}
        # Classical kill: every other definition of a variable defined here.
        self._kill = {n: ops.from_defs(self.info.other_defs[n]) for n in graph.nodes}
        self._in: Dict[PFGNode, object] = {}
        self._out: Dict[PFGNode, object] = {}

    def nodes(self):
        return self.graph.document_order()

    def initialize(self) -> None:
        empty = self.ops.empty()
        for n in self.graph.nodes:
            self._in[n] = empty
            self._out[n] = empty

    def update(self, n: PFGNode) -> bool:
        ops = self.ops
        new_in = ops.union_all(self._out[p] for p in self.graph.control_preds(n))
        new_out = ops.difference_union(new_in, self._kill[n], self._gen[n])
        changed = not ops.equals(new_in, self._in[n]) or not ops.equals(new_out, self._out[n])
        self._in[n] = new_in
        self._out[n] = new_out
        return changed

    def dependents(self, n: PFGNode) -> Iterable[PFGNode]:
        return self.graph.control_succs(n)

    def record_justifications(self):
        """Solver post-convergence hook (see :mod:`repro.provenance`)."""
        from ..provenance.record import build_justifications

        ops = self.ops
        nodes = self.graph.nodes
        self._provenance = build_justifications(
            self.graph,
            {n: ops.to_frozenset(self._in[n]) for n in nodes},
            {n: ops.to_frozenset(self._out[n]) for n in nodes},
            self.info.gen,
            include_sync=False,
            system="sequential",
        )
        return self._provenance

    def snapshot(self):
        ops = self.ops
        return {
            "In": {n.name: ops.to_frozenset(self._in[n]) for n in self.graph.nodes},
            "Out": {n.name: ops.to_frozenset(self._out[n]) for n in self.graph.nodes},
        }

    def to_result(self, stats: SolveStats, known=None) -> ReachingDefsResult:
        """``known`` maps slot name → {node: frozenset} for rows whose
        final values are already materialized (the incremental engine's
        seeded clean regions) — frozenset conversion is skipped there."""
        ops = self.ops
        known = known or {}

        def mat(slot_name, values):
            pre = known.get(slot_name)
            if not pre:
                return {n: ops.to_frozenset(values[n]) for n in self.graph.nodes}
            return {
                n: pre[n] if n in pre else ops.to_frozenset(values[n])
                for n in self.graph.nodes
            }

        return ReachingDefsResult(
            graph=self.graph,
            info=self.info,
            in_sets=mat("_in", self._in),
            out_sets=mat("_out", self._out),
            stats=stats,
            system="sequential",
            provenance=self._provenance,
        )


def solve_sequential(
    graph: ParallelFlowGraph,
    backend: str = "bitset",
    order: str = "document",
    solver: str = "round-robin",
    snapshot_passes: bool = False,
    budget=None,
    record_provenance: bool = False,
    dense=None,
) -> ReachingDefsResult:
    """Run sequential reaching definitions to fixpoint on ``graph``.

    ``dense`` (a :class:`~repro.dataflow.dense.DenseConfig`) tunes
    dense-region dispatch for the scc engines; ``solver="scc-dense"``
    forces the vectorized evaluator on for eligible cyclic regions."""
    system = SequentialRDSystem(graph, backend=backend, record_provenance=record_provenance)
    nodes = make_order(graph, order)
    if solver == "round-robin":
        stats = solve_round_robin(
            system, nodes, order_name=order, snapshot_passes=snapshot_passes, budget=budget
        )
    elif solver == "worklist":
        stats = solve_worklist(system, nodes, order_name=f"worklist/{order}", budget=budget)
    elif solver in ("scc", "scc-dense"):
        from ..dataflow.dense import DenseConfig
        from ..dataflow.sched import solve_scc

        if solver == "scc-dense" and dense is None:
            dense = DenseConfig(mode="always")
        stats = solve_scc(
            system, nodes, order_name=f"{solver}/{order}", budget=budget, dense=dense
        )
    else:
        raise ValueError(f"unknown solver {solver!r}")
    return system.to_result(stats)
