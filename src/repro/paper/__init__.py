"""Paper artifacts: the example programs, golden data-flow sets, and
regeneration of every table and figure in the paper."""

from .programs import SOURCES, graph, program

__all__ = ["SOURCES", "graph", "program"]
