"""Golden data-flow sets for the paper's tables and figures.

Provenance key (per EXPERIMENTS.md):

* entries marked in the comments as *paper-verbatim* were read directly
  from the paper's Table 1 / Figure 8 / Figures 11–12 (where the scanned
  tables are legible) or from prose claims in §§1, 5, 6;
* the remaining entries were **derived by hand** from the paper's
  equations (Figures 7 and 10) before the implementation existed, then
  frozen here; the legible paper entries pin the derivation.

Definition naming: the paper subscripts definitions with block numbers
(``x4``); definitions in the ``Entry`` block print as ``xEntry`` here
(the paper uses ``x0``/``y0``).

All sets are frozensets of definition-name strings; nodes are keyed by
block name.  ``EXPECTED_PASSES`` records the paper's convergence claims
(counting as DESIGN.md §2: "converges on the second iteration" =
1 changing pass + 1 verification pass).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping

Row = Mapping[str, FrozenSet[str]]
Table = Dict[str, Row]


def _t(raw: Dict[str, Dict[str, set]]) -> Table:
    return {node: {col: frozenset(vals) for col, vals in row.items()} for node, row in raw.items()}


# ---------------------------------------------------------------------------
# Table 1 — sequential reaching definitions for Figure 1(a).
# Paper-verbatim rows (legible in the scan): Gen/Kill for (1),(4),(5),(6);
# In(2)..In(6); the Gen/Kill structure of Entry/Exit.  In/Out for (2),(6)
# at fixpoint are paper-verbatim; the loop-carried closure of the others
# is derived (the paper's scan garbles those cells).
# ---------------------------------------------------------------------------

TABLE1_FIXPOINT: Table = _t(
    {
        "Entry": {"Gen": set(), "Kill": set(), "In": set(), "Out": set()},
        "1": {"Gen": {"j1", "k1"}, "Kill": {"j4", "k5"}, "In": set(), "Out": {"j1", "k1"}},
        "2": {
            "Gen": set(),
            "Kill": set(),
            "In": {"j1", "j4", "k1", "k5", "l6"},
            "Out": {"j1", "j4", "k1", "k5", "l6"},
        },
        "3": {
            "Gen": set(),
            "Kill": set(),
            "In": {"j1", "j4", "k1", "k5", "l6"},
            "Out": {"j1", "j4", "k1", "k5", "l6"},
        },
        "4": {
            "Gen": {"j4"},
            "Kill": {"j1"},
            "In": {"j1", "j4", "k1", "k5", "l6"},
            "Out": {"j4", "k1", "k5", "l6"},
        },
        "5": {
            "Gen": {"k5"},
            "Kill": {"k1"},
            "In": {"j1", "j4", "k1", "k5", "l6"},
            "Out": {"j1", "j4", "k5", "l6"},
        },
        "6": {
            "Gen": {"l6"},
            "Kill": set(),
            "In": {"j1", "j4", "k1", "k5", "l6"},
            "Out": {"j1", "j4", "k1", "k5", "l6"},
        },
        "7": {
            "Gen": set(),
            "Kill": set(),
            "In": {"j1", "j4", "k1", "k5", "l6"},
            "Out": {"j1", "j4", "k1", "k5", "l6"},
        },
        "Exit": {
            "Gen": set(),
            "Kill": set(),
            "In": {"j1", "j4", "k1", "k5", "l6"},
            "Out": {"j1", "j4", "k1", "k5", "l6"},
        },
    }
)

#: First-iteration In sets of Table 1 (paper-verbatim where legible):
#: before the loop-carried defs arrive, In(2..6) = {j1, k1}.
TABLE1_ITER1_IN: Dict[str, FrozenSet[str]] = {
    "1": frozenset(),
    "2": frozenset({"j1", "k1"}),
    "3": frozenset({"j1", "k1"}),
    "4": frozenset({"j1", "k1"}),
    "5": frozenset({"j1", "k1"}),
    "6": frozenset({"j1", "j4", "k1", "k5"}),
}

# ---------------------------------------------------------------------------
# Figure 8 — all sets for the Figure 6 program at fixpoint (the paper's
# single shown iteration equals the fixpoint: "converges on the second
# iteration ... the first iteration is the same as the second").
# Paper-verbatim: the Gen/Kill/ParKill table; ACCKillout(3) = {a1,b1};
# ACCKillout(5) = {b1}; ACCKillout(7) = {c1}; ACCKillin(8) = ∅;
# In(9) = {a1,b5,c1,c7}; In(10) = {a3,b3,b5,c1,c7}; Out(10) ∋ b3,b5,d10;
# ACCKillout(10) ∋ b1, ∌ c1 (prose).  Remainder derived.
# ---------------------------------------------------------------------------

FIG8_FIXPOINT: Table = _t(
    {
        "Entry": {
            "Gen": set(), "Kill": set(), "ParallelKill": set(), "In": set(), "Out": set(),
            "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(),
        },
        "1": {
            "Gen": {"a1", "b1", "c1"}, "Kill": {"a3", "b3", "b5", "c7"}, "ParallelKill": set(),
            "In": set(), "Out": {"a1", "b1", "c1"},
            "ACCKillin": set(), "ACCKillout": {"a3", "b3", "b5", "c7"}, "ForkKill": set(),
        },
        "2": {
            "Gen": set(), "Kill": set(), "ParallelKill": set(),
            "In": {"a1", "b1", "c1"}, "Out": {"a1", "b1", "c1"},
            "ACCKillin": {"a3", "b3", "b5", "c7"}, "ACCKillout": set(),
            "ForkKill": {"a3", "b3", "b5", "c7"},
        },
        "3": {
            "Gen": {"a3", "b3"}, "Kill": {"a1", "b1"}, "ParallelKill": {"b5"},
            "In": {"a1", "b1", "c1"}, "Out": {"a3", "b3", "c1"},
            "ACCKillin": set(), "ACCKillout": {"a1", "b1"}, "ForkKill": set(),
        },
        "4": {
            "Gen": set(), "Kill": set(), "ParallelKill": set(),
            "In": {"a1", "b1", "c1"}, "Out": {"a1", "b1", "c1"},
            "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(),
        },
        "5": {
            "Gen": {"b5"}, "Kill": {"b1"}, "ParallelKill": {"b3"},
            "In": {"a1", "b1", "c1"}, "Out": {"a1", "b5", "c1"},
            "ACCKillin": set(), "ACCKillout": {"b1"}, "ForkKill": set(),
        },
        "6": {
            "Gen": set(), "Kill": set(), "ParallelKill": set(),
            "In": {"a1", "b1", "c1"}, "Out": {"a1", "b1", "c1"},
            "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(),
        },
        "7": {
            "Gen": {"c7"}, "Kill": {"c1"}, "ParallelKill": set(),
            "In": {"a1", "b1", "c1"}, "Out": {"a1", "b1", "c7"},
            "ACCKillin": set(), "ACCKillout": {"c1"}, "ForkKill": set(),
        },
        "8": {
            "Gen": set(), "Kill": set(), "ParallelKill": set(),
            "In": {"a1", "b1", "c1", "c7"}, "Out": {"a1", "b1", "c1", "c7"},
            "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(),
        },
        "9": {
            "Gen": set(), "Kill": set(), "ParallelKill": set(),
            "In": {"a1", "b5", "c1", "c7"}, "Out": {"a1", "b5", "c1", "c7"},
            "ACCKillin": {"b1"}, "ACCKillout": {"b1"}, "ForkKill": set(),
        },
        "10": {
            "Gen": {"d10"}, "Kill": set(), "ParallelKill": set(),
            "In": {"a3", "b3", "b5", "c1", "c7"},
            "Out": {"a3", "b3", "b5", "c1", "c7", "d10"},
            "ACCKillin": {"a1", "b1"}, "ACCKillout": {"a1", "b1"}, "ForkKill": set(),
        },
        "Exit": {
            "Gen": set(), "Kill": set(), "ParallelKill": set(),
            "In": {"a3", "b3", "b5", "c1", "c7", "d10"},
            "Out": {"a3", "b3", "b5", "c1", "c7", "d10"},
            "ACCKillin": {"a1", "b1"}, "ACCKillout": {"a1", "b1"}, "ForkKill": set(),
        },
    }
)

# ---------------------------------------------------------------------------
# Figure 3 program: local sets (paper-verbatim for nodes 4,5,6,8,9 per the
# Figure 11 Gen/Kill/ParKill table and the §6 prose about ParallelKill at
# nodes 6 and 9), plus the per-iteration tables of Figures 11 and 12.
# The paper writes Entry-block definitions as x0/y0; here xEntry/yEntry.
# ---------------------------------------------------------------------------

FIG3_LOCAL: Table = _t(
    {
        "Entry": {"Gen": {"xEntry", "yEntry"}, "Kill": {"x4", "x5", "x8", "y11"}, "ParallelKill": set()},
        "1": {"Gen": set(), "Kill": set(), "ParallelKill": set()},
        "2": {"Gen": set(), "Kill": set(), "ParallelKill": set()},
        "3": {"Gen": set(), "Kill": set(), "ParallelKill": set()},
        "4": {"Gen": {"x4"}, "Kill": {"x5", "xEntry"}, "ParallelKill": {"x8"}},
        "5": {"Gen": {"x5"}, "Kill": {"x4", "xEntry"}, "ParallelKill": {"x8"}},
        "6": {"Gen": {"z6"}, "Kill": set(), "ParallelKill": {"z9"}},
        "7": {"Gen": set(), "Kill": set(), "ParallelKill": set()},
        "8": {"Gen": {"x8"}, "Kill": {"xEntry"}, "ParallelKill": {"x4", "x5"}},
        "9": {"Gen": {"z9"}, "Kill": set(), "ParallelKill": {"z6"}},
        "10": {"Gen": set(), "Kill": set(), "ParallelKill": set()},
        "11": {"Gen": {"y11"}, "Kill": {"yEntry"}, "ParallelKill": set()},
        "12": {"Gen": set(), "Kill": set(), "ParallelKill": set()},
        "Exit": {"Gen": set(), "Kill": set(), "ParallelKill": set()},
    }
)

#: Figure 11 — state after iteration 1.  Paper-verbatim cells include
#: In(8)={x4,x5,y0}, Out(8)={x8,y0}, ACCKillin(8)={x4,x5},
#: ACCKillout(8)={x0,x4,x5}, In(10)={x8,y0,z9}, In(11)={x8,y0,z6,z9},
#: Out(11)={x8,y11,z6,z9}; the rest is derived.
FIG11_ITER1: Table = _t(
    {
        "Entry": {"In": set(), "Out": {"xEntry", "yEntry"}, "ACCKillin": set(), "ACCKillout": {"x4", "x5", "x8", "y11"}, "ForkKill": set(), "SynchPass": set()},
        "1": {"In": {"xEntry", "yEntry"}, "Out": {"xEntry", "yEntry"}, "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(), "SynchPass": set()},
        "2": {"In": {"xEntry", "yEntry"}, "Out": {"xEntry", "yEntry"}, "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(), "SynchPass": set()},
        "3": {"In": {"xEntry", "yEntry"}, "Out": {"xEntry", "yEntry"}, "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(), "SynchPass": set()},
        "4": {"In": {"xEntry", "yEntry"}, "Out": {"x4", "yEntry"}, "ACCKillin": set(), "ACCKillout": {"x5", "xEntry"}, "ForkKill": set(), "SynchPass": set()},
        "5": {"In": {"xEntry", "yEntry"}, "Out": {"x5", "yEntry"}, "ACCKillin": set(), "ACCKillout": {"x4", "xEntry"}, "ForkKill": set(), "SynchPass": set()},
        "6": {"In": {"x4", "x5", "yEntry"}, "Out": {"x4", "x5", "yEntry", "z6"}, "ACCKillin": {"xEntry"}, "ACCKillout": {"xEntry"}, "ForkKill": set(), "SynchPass": set()},
        "7": {"In": {"xEntry", "yEntry"}, "Out": {"xEntry", "yEntry"}, "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(), "SynchPass": set()},
        "8": {"In": {"x4", "x5", "yEntry"}, "Out": {"x8", "yEntry"}, "ACCKillin": {"x4", "x5"}, "ACCKillout": {"x4", "x5", "xEntry"}, "ForkKill": set(), "SynchPass": {"x4", "x5", "yEntry"}},
        "9": {"In": {"xEntry", "yEntry"}, "Out": {"xEntry", "yEntry", "z9"}, "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(), "SynchPass": set()},
        "10": {"In": {"x8", "yEntry", "z9"}, "Out": {"x8", "yEntry", "z9"}, "ACCKillin": {"x4", "x5", "xEntry"}, "ACCKillout": {"x4", "x5", "xEntry"}, "ForkKill": set(), "SynchPass": {"x4", "x5", "yEntry"}},
        "11": {"In": {"x8", "yEntry", "z6", "z9"}, "Out": {"x8", "y11", "z6", "z9"}, "ACCKillin": {"x4", "x5", "xEntry", "yEntry"}, "ACCKillout": {"x4", "x5", "xEntry", "yEntry"}, "ForkKill": set(), "SynchPass": {"x4", "x5", "yEntry"}},
        "12": {"In": {"x8", "y11", "z6", "z9"}, "Out": {"x8", "y11", "z6", "z9"}, "ACCKillin": {"x4", "x5", "xEntry", "yEntry"}, "ACCKillout": {"x4", "x5", "xEntry", "yEntry"}, "ForkKill": set(), "SynchPass": {"x4", "x5", "yEntry"}},
        "Exit": {"In": {"xEntry", "yEntry"}, "Out": {"xEntry", "yEntry"}, "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(), "SynchPass": set()},
    }
)

#: Figure 12 — state after iteration 2 (= the fixpoint; the paper's third
#: iteration verifies it).  Paper-verbatim anchors: x4,x5 ∉ In(11);
#: ACCKillout(11) ∋ x4,x5; z6,z9 ∈ In(11); Out(6) ∌ z9; Out(9) ∌ z6.
FIG12_ITER2: Table = _t(
    {
        "Entry": {"In": set(), "Out": {"xEntry", "yEntry"}, "ACCKillin": set(), "ACCKillout": {"x4", "x5", "x8", "y11"}, "ForkKill": set(), "SynchPass": set()},
        "1": {"In": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "Out": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "ACCKillin": {"x4", "x5"}, "ACCKillout": {"x4", "x5"}, "ForkKill": set(), "SynchPass": set()},
        "2": {"In": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "Out": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "ACCKillin": {"x4", "x5"}, "ACCKillout": set(), "ForkKill": {"x4", "x5"}, "SynchPass": set()},
        "3": {"In": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "Out": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(), "SynchPass": set()},
        "4": {"In": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "Out": {"x4", "y11", "yEntry", "z6", "z9"}, "ACCKillin": set(), "ACCKillout": {"x5", "xEntry"}, "ForkKill": set(), "SynchPass": set()},
        "5": {"In": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "Out": {"x5", "y11", "yEntry", "z6", "z9"}, "ACCKillin": set(), "ACCKillout": {"x4", "xEntry"}, "ForkKill": set(), "SynchPass": set()},
        "6": {"In": {"x4", "x5", "y11", "yEntry", "z6", "z9"}, "Out": {"x4", "x5", "y11", "yEntry", "z6"}, "ACCKillin": {"xEntry"}, "ACCKillout": {"xEntry"}, "ForkKill": set(), "SynchPass": set()},
        "7": {"In": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "Out": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(), "SynchPass": set()},
        "8": {"In": {"x4", "x5", "x8", "y11", "yEntry", "z6", "z9"}, "Out": {"x8", "y11", "yEntry", "z6", "z9"}, "ACCKillin": {"x4", "x5"}, "ACCKillout": {"x4", "x5", "xEntry"}, "ForkKill": set(), "SynchPass": {"x4", "x5", "yEntry"}},
        "9": {"In": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "Out": {"x8", "xEntry", "y11", "yEntry", "z9"}, "ACCKillin": set(), "ACCKillout": set(), "ForkKill": set(), "SynchPass": set()},
        "10": {"In": {"x8", "y11", "yEntry", "z6", "z9"}, "Out": {"x8", "y11", "yEntry", "z6", "z9"}, "ACCKillin": {"x4", "x5", "xEntry"}, "ACCKillout": {"x4", "x5", "xEntry"}, "ForkKill": set(), "SynchPass": {"x4", "x5", "yEntry"}},
        "11": {"In": {"x8", "y11", "yEntry", "z6", "z9"}, "Out": {"x8", "y11", "z6", "z9"}, "ACCKillin": {"x4", "x5", "xEntry", "yEntry"}, "ACCKillout": {"x4", "x5", "xEntry", "yEntry"}, "ForkKill": set(), "SynchPass": {"x4", "x5", "yEntry"}},
        "12": {"In": {"x8", "y11", "z6", "z9"}, "Out": {"x8", "y11", "z6", "z9"}, "ACCKillin": {"x4", "x5", "xEntry", "yEntry"}, "ACCKillout": {"x4", "x5", "xEntry", "yEntry"}, "ForkKill": set(), "SynchPass": {"x4", "x5", "yEntry"}},
        "Exit": {"In": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "Out": {"x8", "xEntry", "y11", "yEntry", "z6", "z9"}, "ACCKillin": {"x4", "x5"}, "ACCKillout": {"x4", "x5"}, "ForkKill": set(), "SynchPass": set()},
    }
)

#: Preserved(8) for Figure 3 — paper-verbatim (§6).
FIG3_PRESERVED_8: FrozenSet[str] = frozenset({"Entry", "1", "2", "3", "4", "5", "7"})

#: Convergence claims (changing passes, total passes), document order.
EXPECTED_PASSES = {
    "table1": (2, 3),  # "shows two iterations; the third is the same as the second"
    "fig8": (1, 2),    # "converges on the second iteration"
    "fig11_12": (2, 3),  # "the fix point is reached in the third iteration"
}

#: Figure 2 — CFG of Figure 1(a): edges as (src, dst) block names.
FIG2_CFG_EDGES = frozenset(
    {
        ("Entry", "1"),
        ("1", "2"),
        ("2", "3"),       # loop header -> body
        ("2", "Exit"),    # loop exit
        ("3", "4"),       # then
        ("3", "5"),       # else
        ("4", "6"),
        ("5", "6"),
        ("6", "7"),
        ("7", "2"),       # back edge
    }
)

#: Figure 4 — PFG of Figure 3: edges as (src, dst, kind) with kind in
#: {"seq", "par", "sync"}.
FIG4_PFG_EDGES = frozenset(
    {
        ("Entry", "1", "seq"),
        ("1", "2", "seq"),
        ("1", "Exit", "seq"),
        ("2", "3", "par"),
        ("2", "7", "par"),
        ("3", "4", "seq"),
        ("3", "5", "seq"),
        ("4", "6", "seq"),
        ("5", "6", "seq"),
        ("4", "8", "sync"),
        ("5", "8", "sync"),
        ("6", "11", "par"),
        ("7", "8", "par"),
        ("7", "9", "par"),
        ("8", "10", "par"),
        ("9", "10", "par"),
        ("10", "11", "par"),
        ("11", "12", "seq"),
        ("12", "1", "seq"),
    }
)

#: Figure 9's claims: only the wait-node definition of x reaches the join;
#: the fork-side definition is in the post block's ACCKillout.
FIG9_JOIN_IN: FrozenSet[str] = frozenset({"x5", "y4"})
FIG9_POST_ACCKILLOUT: FrozenSet[str] = frozenset({"x1", "y1"})
