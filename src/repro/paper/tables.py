"""Regenerate every table and figure of the paper.

Each ``table*``/``fig*`` function runs the corresponding analysis on the
corresponding paper program and renders the paper-style artifact (ASCII
table or DOT graph); ``regenerate_all`` produces the complete set.  The
benchmark suite calls the same functions so the rendered artifacts and the
timing numbers always come from the same code path.
"""

from __future__ import annotations

from typing import Dict, List

from ..pfg import to_dot
from ..reachdefs import solve_parallel, solve_sequential, solve_synch
from ..reachdefs.result import ReachingDefsResult
from ..tools.format import render_table
from . import programs

_SEQ_COLS = ("Gen", "Kill", "In", "Out")
_PAR_COLS = ("Gen", "Kill", "ParallelKill", "In", "Out", "ACCKillin", "ACCKillout", "ForkKill")
_SYNC_COLS = _PAR_COLS + ("SynchPass",)


def _rows(result: ReachingDefsResult, columns) -> Dict[str, Dict[str, frozenset]]:
    return {
        node.name: {col: result.set_names(col, node) for col in columns}
        for node in result.graph.document_order()
    }


def _order(result: ReachingDefsResult) -> List[str]:
    return [n.name for n in result.graph.document_order()]


def table1() -> str:
    """Table 1: sequential reaching definitions for Figure 1(a), fixpoint."""
    result = solve_sequential(programs.graph("fig1a"), solver="round-robin")
    return render_table(
        _rows(result, _SEQ_COLS),
        _SEQ_COLS,
        _order(result),
        title="Table 1 — sequential reaching definitions, Figure 1(a) (fixpoint; "
        f"{result.stats.changing_passes}+1 iterations)",
    )


def fig2() -> str:
    """Figure 2: the CFG of Figure 1(a), as DOT."""
    return to_dot(programs.graph("fig1a"))


def fig4() -> str:
    """Figure 4: the PFG of Figure 3, as DOT."""
    return to_dot(programs.graph("fig3"))


def fig8() -> str:
    """Figure 8: all data-flow sets for the Figure 6 program (fixpoint,
    which the paper shows as iteration 1 = iteration 2)."""
    result = solve_parallel(programs.graph("fig6"), solver="round-robin")
    return render_table(
        _rows(result, _PAR_COLS),
        _PAR_COLS,
        _order(result),
        title="Figure 8 — parallel reaching definitions, Figure 6 program "
        f"(fixpoint; {result.stats.changing_passes}+1 iterations)",
    )


def fig11_12() -> str:
    """Figures 11 and 12: iterations 1 and 2 of the synchronized system on
    the Figure 3 program (iteration 2 is the fixpoint)."""
    result = solve_synch(programs.graph("fig3"), solver="round-robin", snapshot_passes=True)
    parts = []
    order = _order(result)
    for i, snap in enumerate(result.stats.snapshots[:2], start=1):
        rows = {
            name: {col: frozenset(str(d) for d in snap[col][name]) for col in snap}
            for name in order
        }
        cols = ("In", "Out", "ACCKillin", "ACCKillout", "ForkKill", "SynchPass")
        parts.append(
            render_table(
                rows,
                cols,
                order,
                title=f"Figure {10 + i} — synchronized reaching definitions, "
                f"Figure 3 program: iteration {i}",
            )
        )
    # Local sets table (the Gen/Kill/ParKill half of Figure 11).
    local_cols = ("Gen", "Kill", "ParallelKill")
    parts.insert(
        0,
        render_table(
            _rows(result, local_cols),
            local_cols,
            order,
            title="Figure 11 (local sets) — Gen/Kill/ParallelKill, Figure 3 program",
        ),
    )
    return "\n".join(parts)


def regenerate_all() -> Dict[str, str]:
    """Every regenerable artifact, keyed by paper name."""
    return {
        "table1": table1(),
        "fig2": fig2(),
        "fig4": fig4(),
        "fig8": fig8(),
        "fig11_12": fig11_12(),
    }
