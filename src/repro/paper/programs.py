"""The paper's example programs, in mini-PCF source.

Each program is written with the paper's block labels so the resulting
CFG/PFG node names and definition names (``j4``, ``x5``, ...) match the
figures exactly.  Where the paper's listing is ambiguous (OCR noise,
implicit ``endif``), the reconstruction is pinned down by the worked tables
— see EXPERIMENTS.md for the reasoning per figure.

* :data:`FIG1A_SEQUENTIAL` — Figure 1(a): sequential loop with a
  conditional; Table 1 / Figure 2 baseline.  Reconstruction note: the
  listing elides the ``else``; Table 1's ``In(5) = {j1,k1}`` (not
  ``{j4,k1}``) shows blocks (4) and (5) are *alternative branches*, and
  ``In(6) = {j1,k1,j4,k5}`` shows (6) is the merge — i.e. the conditional
  is ``if c then j=j+1 else k=5``, mirroring the two parallel sections of
  Figure 1(b) ("very similar control flow structures").
* :data:`FIG1B_PARALLEL` — Figure 1(b): same shape with ``Parallel
  Sections``; motivates induction-variable detection (``j``) and constant
  propagation (``k = 5`` at construct end).
* :data:`FIG3_SYNC` — Figure 3: nested sections in a loop with
  ``post``/``wait`` on event ``ev``; Figures 4, 11, 12.
* :data:`FIG5A_SEQUENTIAL` / :data:`FIG5B_PARALLEL` — Figure 5: the
  sequential-vs-parallel merge-semantics comparison.
* :data:`FIG6_PARALLEL` — Figure 6 (the program of Figure 5(B) with the
  conditional definition of ``c``); Figure 8's worked example.
* :data:`FIG9_SYNC` — Figure 9's synchronization PFG as a program.  The
  figure's fork node carries the definitions ``x``/``y``; our builder keeps
  fork nodes statement-free, so those definitions sit in the block *before*
  the fork — data-flow equivalent (same In set at the fork's sections).
"""

from __future__ import annotations

from ..lang import ast, parse_program
from ..pfg import ParallelFlowGraph, build_pfg

FIG1A_SEQUENTIAL = """\
program fig1a
  (1) j = 0
  (1) k = 1
  (2) loop
    (3) if condition then
      (4) j = j + 1
    else
      (5) k = 5
    (6) endif
    (6) l = k + 4
  (7) endloop
end program
"""

FIG1B_PARALLEL = """\
program fig1b
  (1) j = 0
  (1) k = 1
  (2) loop
    (3) parallel sections
      (4) section A
        (4) j = j + 1
      (5) section B
        (5) k = 5
    (6) end parallel sections
    (6) l = k + 4
  (7) endloop
end program
"""

FIG3_SYNC = """\
program fig3
  event ev
  (Entry) x = 2
  (Entry) y = 5
  (1) loop
    (2) parallel sections
      (3) section A
        (3) if condition then
          (4) x = 7
          (4) post(ev)
        else
          (5) x = 8
          (5) post(ev)
        (6) endif
        (6) z = y * 7
      (7) section B
        (7) parallel sections
          (8) section B1
            (8) wait(ev)
            (8) x = x * 32
          (9) section B2
            (9) z = y * 54
        (10) end parallel sections
    (11) end parallel sections
    (11) y = x * z
  (12) endloop
end program
"""

#: Figure 3, made executable.  The paper notes its Figure 3 "would not
#: execute properly" because ``ev`` is never cleared between loop
#: iterations — a stale posted event lets the wait proceed *before* the
#: current iteration's post, violating the synchronization-correctness
#: assumption the §6 equations (and Callahan–Subhlok's Preserved sets)
#: rest on.  Clearing the event at the top of each iteration restores the
#: assumption; the interpreter-based soundness tests use this variant
#: (and use the broken original to *demonstrate* the caveat).
FIG3_SYNC_CLEARED = FIG3_SYNC.replace("program fig3", "program fig3c").replace(
    "  (1) loop\n", "  (1) loop\n    clear(ev)\n"
)

FIG5A_SEQUENTIAL = """\
program fig5a
  (1) a = 0
  (1) b = 1
  (2) if condition then
    (3) a = a + 1
    (3) b = 7
  else
    (4) b = 5
  endif
  (5) c = a * b
end program
"""

FIG5B_PARALLEL = """\
program fig5b
  (1) a = 0
  (1) b = 1
  (1) c = 2
  (2) parallel sections
    (3) section A
      (3) a = a + 1
      (3) b = 7
    (4) section B
      (4) parallel sections
        (5) section B1
          (5) b = 5
        (6) section B2
          (6) if P then
            (7) c = 6
          (8) endif
      (9) end parallel sections
  (10) end parallel sections
  (10) d = a * b + c
end program
"""

#: Figure 6 is the same program as Figure 5(B); the paper presents it twice
#: (once for the merge discussion, once for the worked equations).
FIG6_PARALLEL = FIG5B_PARALLEL.replace("program fig5b", "program fig6")

FIG9_SYNC = """\
program fig9
  event ev
  (1) x = 1
  (1) y = 2
  (2) parallel sections
    (3) section P1
      (3) x = 3
      (3) post(ev)
      (4) y = 3
    (5) section P2
      (5) wait(ev)
      (5) x = x * 2
  (6) end parallel sections
end program
"""

#: All paper programs by figure key.
SOURCES = {
    "fig1a": FIG1A_SEQUENTIAL,
    "fig1b": FIG1B_PARALLEL,
    "fig3": FIG3_SYNC,
    "fig3c": FIG3_SYNC_CLEARED,
    "fig5a": FIG5A_SEQUENTIAL,
    "fig5b": FIG5B_PARALLEL,
    "fig6": FIG6_PARALLEL,
    "fig9": FIG9_SYNC,
}


def program(key: str) -> ast.Program:
    """Parse the paper program named ``key`` (``'fig1a'`` ... ``'fig9'``)."""
    return parse_program(SOURCES[key])


def graph(key: str) -> ParallelFlowGraph:
    """Build the CFG/PFG of the paper program named ``key``."""
    return build_pfg(program(key))
