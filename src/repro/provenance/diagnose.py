"""Anomaly diagnostics: cite each colliding definition's full provenance.

The paper reads multiple definitions of one variable reaching a join or
wait as a potential concurrent-update anomaly (§3/§5/§6); a bare report
("``x4``/``x5`` reach the join") leaves the *why* to the reader.  This
module expands every :class:`~repro.analysis.anomalies.Anomaly` into a
diagnostic whose colliding definitions each carry their justification
chain — birth statement, every PFG hop, every synchronization crossed —
so the collision can be traced to the source constructs that allow it.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..analysis.anomalies import Anomaly, AnomalyKind, find_anomalies
from ..pfg.concurrency import concurrent
from ..reachdefs.result import ReachingDefsResult
from .explain import render_chain
from .record import ensure_provenance

__all__ = ["diagnose_anomaly", "diagnose_anomalies"]


def diagnose_anomaly(result: ReachingDefsResult, anomaly: Anomaly) -> str:
    """One anomaly, expanded: the classification line, a concurrency note
    naming the first genuinely unordered pair (for race severities), and
    each definition's chain to the anomalous node."""
    prov = ensure_provenance(result)
    node = anomaly.node
    lines: List[str] = [anomaly.format()]
    defs = sorted(anomaly.defs, key=lambda d: d.index)
    if anomaly.kind is not AnomalyKind.MULTIPLE:
        pair = _first_concurrent_pair(result, defs, anomaly)
        if pair is not None and pair[0] is pair[1]:
            lines.append(
                f"  {pair[0].name} is written inside a Parallel Do body — "
                f"distinct iterations may both write it, so any copy can win"
            )
        elif pair is not None:
            lines.append(
                f"  {pair[0].name} and {pair[1].name} are written by blocks "
                f"that may execute concurrently — either value can win"
            )
    for d in defs:
        lines.append(f"  {d.name} reaches ({node.name}) because:")
        lines.extend(f"    {line}" for line in render_chain(prov, "In", node, d))
    return "\n".join(lines) + "\n"


def _first_concurrent_pair(result, defs, anomaly):
    nodes = [result.info.def_node[d] for d in defs]
    for i in range(len(defs)):
        for j in range(i + 1, len(defs)):
            if concurrent(nodes[i], nodes[j]):
                return defs[i], defs[j]
    if anomaly.kind is AnomalyKind.CROSS_ITERATION and defs:
        # Single static definition racing with itself across iterations.
        return defs[0], defs[0]
    return None


def diagnose_anomalies(
    result: ReachingDefsResult,
    anomalies: Optional[Sequence[Anomaly]] = None,
    include_multiple: bool = True,
) -> str:
    """Full diagnostic report; computes the anomaly list if not given."""
    if anomalies is None:
        anomalies = find_anomalies(result, include_multiple=include_multiple)
    if not anomalies:
        return "no anomalies found\n"
    return "\n".join(diagnose_anomaly(result, a) for a in anomalies)
