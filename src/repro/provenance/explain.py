"""Render justification chains as human-readable provenance reports.

The ``repro explain`` CLI command and the anomaly diagnostics both speak
through here: :func:`render_chain` turns one derivation into indented
text lines (birth statement → each PFG/sync hop → the block it lands
in), :func:`explain_use` covers one read, and :func:`explain_block`
covers every read in a block (or, with ``var`` and no reads, the
definitions of ``var`` reaching the block's start).
"""

from __future__ import annotations

from typing import List, Optional

from ..ir.defs import Definition, Use
from ..pfg.node import PFGNode
from ..reachdefs.result import ReachingDefsResult
from .record import Justification, JustificationGraph, ensure_provenance

__all__ = [
    "render_chain",
    "format_step",
    "explain_use",
    "explain_block",
]


def format_step(step: Justification) -> str:
    """One line per justification step (renderer for :func:`render_chain`)."""
    fact = step.fact
    if step.kind == "gen":
        stmt = f": {step.note}" if step.note else ""
        return f"born in block ({fact.node.name}){stmt}"
    if step.kind == "flow":
        src, dst, kind = step.edge  # type: ignore[misc]
        note = f" {step.note}" if step.note else ""
        return f"flows ({src}) → ({dst}) on a {kind} edge{note}"
    if step.kind == "survive":
        note = f" — {step.note}" if step.note else ""
        return f"survives block ({fact.node.name}){note}"
    # unsupported
    return f"no derivation: {step.note}"


def render_chain(
    prov: JustificationGraph, slot: str, node: PFGNode, defn: Definition
) -> List[str]:
    """The derivation of ``defn ∈ slot(node)`` as text lines, root first."""
    return [format_step(step) for step in prov.chain(slot, node, defn)]


def _chain_lines(
    result: ReachingDefsResult, node: PFGNode, defn: Definition, indent: str
) -> List[str]:
    prov = ensure_provenance(result)
    local = defn in node.defs
    if local:
        # The definition is in the very block that reads it — no In fact
        # is involved; the chain is the intra-block ordering.
        stmt = f": {defn.stmt}" if defn.stmt is not None else ""
        return [f"{indent}defined earlier in the same block ({node.name}){stmt}"]
    return [f"{indent}{line}" for line in render_chain(prov, "In", node, defn)]


def explain_use(result: ReachingDefsResult, use: Use) -> str:
    """Provenance of every definition reaching one read."""
    node = result.graph.node(use.site)
    defs = sorted(result.reaching_use(use), key=lambda d: d.index)
    if not defs:
        return f"{use.name}: no reaching definition (uninitialized read)\n"
    lines: List[str] = []
    word = "definition" if len(defs) == 1 else "definitions"
    lines.append(f"{use.name}: {len(defs)} reaching {word}")
    for d in defs:
        lines.append(f"  {d.name}:")
        lines.extend(_chain_lines(result, node, d, "    "))
        lines.append(f"    read by {use.name} in block ({node.name})")
    return "\n".join(lines) + "\n"


def explain_block(
    result: ReachingDefsResult, ref, var: Optional[str] = None
) -> str:
    """Provenance report for one block: every read in the block (filtered
    by ``var`` if given); with ``var`` and no matching read, the
    definitions of ``var`` reaching the block's start.

    Raises ``KeyError`` for an unknown block and ``ValueError`` for a
    ``var`` the block neither reads nor receives.
    """
    node = result.graph.node(ref) if isinstance(ref, str) else ref
    uses = [u for u in node.uses() if var is None or u.var == var]
    sections: List[str] = []
    header = f"block ({node.name}): {node.describe()}"
    if uses:
        for use in uses:
            sections.append(explain_use(result, use))
        return header + "\n\n" + "\n".join(sections)
    if var is not None:
        defs = sorted(result.reaching(node, var), key=lambda d: d.index)
        if not defs:
            raise ValueError(
                f"block ({node.name}) neither reads {var!r} nor is reached "
                f"by any definition of it"
            )
        prov = ensure_provenance(result)
        lines = [header, ""]
        word = "definition" if len(defs) == 1 else "definitions"
        lines.append(f"{var} at block entry: {len(defs)} reaching {word}")
        for d in defs:
            lines.append(f"  {d.name}:")
            lines.extend(f"    {line}" for line in render_chain(prov, "In", node, d))
        return "\n".join(lines) + "\n"
    return header + "\n\n(no reads in this block)\n"
