"""Justification graphs: *why* does a definition reach a node?

A converged reaching-definitions fixpoint says **that** ``d ∈ In(n)``; this
module records **why**.  For every fact — a ``(slot, node, definition)``
triple with slot ``In`` or ``Out`` — we store the one justification that
first establishes it:

``gen``
    Root of every chain: ``d ∈ Gen(n)`` puts ``d`` in ``Out(n)`` at its
    birth statement.

``flow``
    ``d ∈ Out(p)`` and a PFG edge ``p → n`` whose kind the system's ``In``
    equation reads carries it into ``In(n)``.  Synchronization edges
    participate only for the §6 system (``include_sync=True``); the edge
    (and, for sync edges, the post/wait events crossed) is recorded.

``survive``
    ``d ∈ In(n)`` and ``d ∉ Kill(n) ∪ ParallelKill(n)`` (nor, in §6, in
    the ``OtherDefs ∩ SynchPass`` ordering kill) leaves ``d ∈ Out(n)`` —
    the definition survived the block, including survival of a
    ``ParallelKill`` at a join or of the SynchPass feedback at a ``wait``.

``unsupported``
    The fact is in the fixpoint but no chain from a birth site derives it.
    Any fixpoint satisfies the *local* equations, so such facts only arise
    as self-supporting cycles in **over-approximate** fixpoints that
    chaotic iteration (round-robin / worklist) can settle into on the
    non-monotone synchronized system.  The deterministic engines
    (stabilized, scc) compute least-resolution fixpoints in which every
    fact is derivable (asserted by the ``provenance-chains`` fuzz oracle).

The graph is **derived from the converged fixpoint**, not recorded during
iteration: document-order propagation passes from the gen roots (nodes
in document order, predecessor edges in insertion order, definitions by
index) assign each fact the derivation that reaches it first in program
order, deterministically.  Because the input is only ``(graph, In, Out,
Gen)``, any two solvers that converge to the same fixpoint — the
stabilized and SCC engines by design — yield **identical** justification
graphs, and recording costs a couple of linear passes over the solution
instead of a per-iteration tax (the constant-factor overlay bounded by
``benchmarks/run_provenance.py``).

Representation note: fact counts grow with the *density* of the fixpoint
(Σ|In| + Σ|Out|, quadratic on define-heavy straightline code), so the
builder works level-synchronously with set operations per node — not
fact-at-a-time — and the graph stores compact tuples internally,
materializing :class:`Fact`/:class:`Justification` objects only on
access (chains are short; the store is not).
"""

from __future__ import annotations

from dataclasses import dataclass
from operator import attrgetter
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from ..ir.defs import Definition
from ..pfg.edges import CONTROL_KINDS, EdgeKind
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode

DefSet = FrozenSet[Definition]

__all__ = [
    "Fact",
    "Justification",
    "JustificationGraph",
    "build_justifications",
    "ensure_provenance",
]


@dataclass(frozen=True)
class Fact:
    """One element of the fixpoint: ``defn ∈ slot(node)``."""

    slot: str  # "In" | "Out"
    node: PFGNode
    defn: Definition

    @property
    def key(self) -> str:
        """Stable string form (``Out:4:x4``) used for cross-solver
        comparison and JSON export."""
        return f"{self.slot}:{self.node.name}:{self.defn.name}"

    def __str__(self) -> str:
        return self.key


@dataclass(frozen=True)
class Justification:
    """Why ``fact`` holds: its kind, the fact it follows from, and (for
    flows) the PFG edge crossed."""

    kind: str  # "gen" | "flow" | "survive" | "unsupported"
    fact: Fact
    source: Optional[Fact] = None
    #: For ``flow``: ``(src_name, dst_name, edge_kind)``.
    edge: Optional[Tuple[str, str, str]] = None
    note: str = ""


#: Internal store: ``(slot, node)`` → ``{defn: (kind, source node | None,
#: edge | None, note)}``.  A justification's source always concerns the
#: *same definition* (flow comes from ``Out`` of the source node, survive
#: from ``In`` of the fact's own node), so only the source node is stored
#: and one entry tuple is shared by every definition of a batch.
_Entry = Tuple[str, Optional[PFGNode], Optional[Tuple[str, str, str]], str]

#: Slot the source fact lives in, by justification kind.
_SOURCE_SLOT = {"flow": "Out", "survive": "In"}


class JustificationGraph:
    """Every fact of one converged fixpoint, each with its justification.

    Facts are stored as nested plain dicts; :class:`Fact`/
    :class:`Justification` objects are materialized on access, so holding
    a dense fixpoint's graph costs one shared-tuple dict entry per fact
    rather than two dataclass instances.
    """

    __slots__ = ("system", "_store")

    def __init__(self, system: str = "") -> None:
        self.system = system
        self._store: Dict[Tuple[str, PFGNode], Dict[Definition, _Entry]] = {}

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._store.values())

    def _materialize(self, slot: str, node: PFGNode, defn: Definition) -> Justification:
        kind, src_node, edge, note = self._store[(slot, node)][defn]
        src_slot = _SOURCE_SLOT.get(kind)
        return Justification(
            kind=kind,
            fact=Fact(slot, node, defn),
            source=Fact(src_slot, src_node, defn) if src_slot is not None else None,
            edge=edge,
            note=note,
        )

    def justification(self, slot: str, node: PFGNode, defn: Definition) -> Justification:
        if not self.has_fact(slot, node, defn):
            raise KeyError(
                f"no such fact in the fixpoint: {slot}:{node.name}:{defn.name}"
            )
        return self._materialize(slot, node, defn)

    def has_fact(self, slot: str, node: PFGNode, defn: Definition) -> bool:
        bucket = self._store.get((slot, node))
        return bucket is not None and defn in bucket

    def items(self) -> Iterator[Tuple[Fact, Justification]]:
        """Lazy ``(fact, justification)`` pairs, grouped by (slot, node)."""
        for (slot, node), bucket in self._store.items():
            for defn in bucket:
                yield Fact(slot, node, defn), self._materialize(slot, node, defn)

    def chain(self, slot: str, node: PFGNode, defn: Definition) -> List[Justification]:
        """The derivation of one fact, root (``gen``) first.

        An ``unsupported`` fact yields a single-element chain.
        """
        if not self.has_fact(slot, node, defn):
            raise KeyError(
                f"no such fact in the fixpoint: {slot}:{node.name}:{defn.name}"
            )
        steps: List[Justification] = []
        seen = set()
        at: Optional[Tuple[str, PFGNode]] = (slot, node)
        while at is not None:
            if at in seen:  # pragma: no cover - derivations are acyclic
                raise RuntimeError(
                    f"justification cycle at {at[0]}:{at[1].name}:{defn.name}"
                )
            seen.add(at)
            steps.append(self._materialize(at[0], at[1], defn))
            kind, src_node, _edge, _note = self._store[at][defn]
            src_slot = _SOURCE_SLOT.get(kind)
            at = (src_slot, src_node) if src_slot is not None else None
        steps.reverse()
        return steps

    def counts(self) -> Dict[str, int]:
        """Facts per justification kind (sorted; for stats and benches)."""
        out: Dict[str, int] = {}
        for bucket in self._store.values():
            for entry in bucket.values():
                kind = entry[0]
                out[kind] = out.get(kind, 0) + 1
        return dict(sorted(out.items()))

    def unsupported(self) -> List[Fact]:
        """Facts with no derivation, in deterministic (node, def) order."""
        out = [
            Fact(slot, node, d)
            for (slot, node), bucket in self._store.items()
            for d, entry in bucket.items()
            if entry[0] == "unsupported"
        ]
        out.sort(key=lambda f: (f.node.id, f.slot, f.defn.index))
        return out

    def canonical(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready, solver-comparable view: fact key → {kind, source,
        edge}.  Two solvers at the same fixpoint produce equal dicts."""
        out: Dict[str, Dict[str, object]] = {}
        for (slot, node), bucket in self._store.items():
            prefix = f"{slot}:{node.name}:"
            for d, (kind, src_node, edge, _note) in bucket.items():
                src_slot = _SOURCE_SLOT.get(kind)
                out[prefix + d.name] = {
                    "kind": kind,
                    "source": (
                        f"{src_slot}:{src_node.name}:{d.name}"
                        if src_slot is not None
                        else None
                    ),
                    "edge": list(edge) if edge is not None else None,
                }
        return dict(sorted(out.items()))


def _flow_note(src: PFGNode, dst: PFGNode, kind: EdgeKind) -> str:
    if kind is EdgeKind.SYNC:
        return f"post({src.post_event}) → wait({dst.wait_event})"
    if kind is EdgeKind.PAR:
        if src.is_fork:
            return "into a parallel section"
        if dst.is_join:
            return "out of a parallel section"
    return ""


def _survive_note(n: PFGNode) -> str:
    if n.is_join:
        return "survives the join (not accumulator-killed)"
    if n.is_wait:
        return f"survives wait({n.wait_event})"
    return ""


def build_justifications(
    graph: ParallelFlowGraph,
    in_sets: Dict[PFGNode, DefSet],
    out_sets: Dict[PFGNode, DefSet],
    gen: Dict[PFGNode, DefSet],
    include_sync: bool = False,
    system: str = "",
) -> JustificationGraph:
    """Derive the justification graph of a converged fixpoint.

    ``include_sync`` widens the flow edges to synchronization edges — set
    it exactly when the system's ``In`` equation reads sync predecessors
    (the §6 synchronized system).  Deterministic: document-order passes
    over the graph, predecessors in edge insertion order, definitions by
    index, repeated until nothing new derives (extra passes only feed
    back edges), so every fact gets the derivation that reaches it first
    in program order and ties break identically on every run and for
    every solver at this fixpoint.

    The propagation works a node's whole wanted *def-set* at a time with
    set operations (facts scale with Σ|In|+Σ|Out|, quadratic on
    define-heavy code) — this is what keeps the on-cost within the 2×
    gate of ``benchmarks/run_provenance.py``.
    """
    kinds = frozenset(EdgeKind) if include_sync else frozenset(CONTROL_KINDS)
    kind_str = {k: str(k) for k in EdgeKind}
    _idx = attrgetter("index")
    fromkeys = dict.fromkeys
    prov = JustificationGraph(system=system)
    nodes = list(graph.document_order())
    in_bucket = {n: {} for n in nodes}
    out_bucket = {n: {} for n in nodes}
    for n in nodes:  # document-order grouping for items()
        prov._store[("In", n)] = in_bucket[n]
        prov._store[("Out", n)] = out_bucket[n]
    edges_in = {
        m: [(p, kind) for p, kind in graph.in_edges(m) if kind in kinds]
        for m in nodes
    }

    # Roots: every definition is born into Out at its birth statement.
    justified_in: Dict[PFGNode, set] = {n: set() for n in nodes}
    justified_out: Dict[PFGNode, set] = {}
    for n in nodes:
        born = set(gen[n] & out_sets[n])
        justified_out[n] = born
        bucket = out_bucket[n]
        for d in sorted(born, key=_idx):
            note = str(d.stmt) if d.stmt is not None else ""
            bucket[d] = ("gen", None, None, note)

    changed = True
    while changed:
        changed = False
        for m in nodes:
            # Flow: pull every still-underived In fact from the first
            # predecessor (edge order) whose Out fact is already derived.
            want = in_sets[m] - justified_in[m]
            if want:
                for p, kind in edges_in[m]:
                    new = justified_out[p] & want
                    if not new:
                        continue
                    entry = ("flow", p, (p.name, m.name, kind_str[kind]), _flow_note(p, m, kind))
                    in_bucket[m].update(fromkeys(sorted(new, key=_idx), entry))
                    justified_in[m] |= new
                    want -= new
                    changed = True
                    if not want:
                        break
            # Survive: In(m) not killed within the block leaves via Out(m).
            new = (justified_in[m] & out_sets[m]) - gen[m] - justified_out[m]
            if new:
                entry = ("survive", m, None, _survive_note(m))
                out_bucket[m].update(fromkeys(sorted(new, key=_idx), entry))
                justified_out[m] |= new
                changed = True

    # Anything left in the fixpoint has no derivation from a birth site.
    entry = (
        "unsupported",
        None,
        None,
        "present in the fixpoint but not derivable from any "
        "birth site (over-approximate chaotic fixpoint)",
    )
    for n in nodes:
        for sets, derived, buckets in (
            (in_sets, justified_in, in_bucket),
            (out_sets, justified_out, out_bucket),
        ):
            left = sets[n] - derived[n]
            if left:
                buckets[n].update(fromkeys(sorted(left, key=_idx), entry))
    return prov


def ensure_provenance(result) -> JustificationGraph:
    """The justification graph for a :class:`~repro.reachdefs.result.
    ReachingDefsResult`, building it post-hoc if the solve did not record
    one (``record_provenance=False``).  Derivation from the converged
    sets is exactly what the in-solve hook does, so the two paths agree.
    """
    prov = getattr(result, "provenance", None)
    if prov is None:
        prov = build_justifications(
            result.graph,
            result.in_sets,
            result.out_sets,
            result.info.gen,
            include_sync=result.synch_pass is not None,
            system=result.system,
        )
        result.provenance = prov
    return prov
