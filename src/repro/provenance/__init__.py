"""repro.provenance — justification graphs and explanation rendering.

Opt in per solve (``analyze(..., record_provenance=True)`` or the
``record_provenance`` flag on ``solve_sequential`` / ``solve_parallel`` /
``solve_synch``): once the fixpoint converges, every solver calls the
system's :meth:`record_justifications` hook, which derives a
:class:`JustificationGraph` — for each ``(node, definition)`` fact, the
edge that first established it (Gen at its birth statement, flow across a
PFG edge, survival at a join or ``wait``) — and attaches it to the result
as ``result.provenance``.  :func:`ensure_provenance` builds the same
graph post-hoc for results solved without the flag.

Derivation is a pure function of the converged sets, so the stabilized
and SCC engines produce identical justifications by construction (pinned
by the ``provenance-chains`` fuzz oracle and the golden chains in
``tests/regression/test_provenance_golden.py``).  See
``docs/provenance.md`` for the edge taxonomy and a chain-reading guide.
"""

from .diagnose import diagnose_anomalies, diagnose_anomaly
from .explain import explain_block, explain_use, format_step, render_chain
from .record import (
    Fact,
    Justification,
    JustificationGraph,
    build_justifications,
    ensure_provenance,
)

__all__ = [
    "Fact",
    "Justification",
    "JustificationGraph",
    "build_justifications",
    "diagnose_anomalies",
    "diagnose_anomaly",
    "ensure_provenance",
    "explain_block",
    "explain_use",
    "format_step",
    "render_chain",
]
