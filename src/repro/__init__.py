"""repro — reaching definitions for explicitly parallel programs.

A reproduction of Grunwald & Srinivasan, *Data Flow Equations for
Explicitly Parallel Programs* (CU-CS-605-92, PPoPP 1993): a mini-PCF
front end, the Parallel Flow Graph, the paper's sequential / parallel /
synchronized reaching-definitions equation systems, the Preserved-set
approximation, optimization clients, and a concurrent interpreter used as
a dynamic soundness oracle.

Quickstart::

    from repro import analyze, parse_program

    prog = parse_program(source_text)
    result = analyze(prog)             # picks the right equation system
    result.reaching("6", "k")          # defs of k reaching block (6)
"""

from __future__ import annotations

from . import obs, robust
from .cfg import build_cfg, is_sequential
from .cssa import build_cssa, render_cssa
from .driver import OptimizationReport, optimize
from .lang import ast, parse_program, pretty
from .pfg import ParallelFlowGraph, build_pfg, to_dot, validate_pfg
from .reachdefs import (
    ReachingDefsResult,
    compute_genkill,
    compute_preserved,
    solve_parallel,
    solve_sequential,
    solve_synch,
)

__version__ = "1.0.0"


def analyze(
    program: "ast.Program",
    backend: str = "bitset",
    order: str = "document",
    solver: str = "stabilized",
    preserved: str = "approx",
    budget=None,
    cache: bool = True,
    record_provenance: bool = False,
    dense=None,
    graph=None,
) -> ReachingDefsResult:
    """Analyze ``program`` with the most precise applicable equation system.

    * sequential program → §2 classical reaching definitions;
    * parallel sections / parallel do, no synchronization → §5 parallel
      system;
    * synchronization present → §6 synchronized system (with the
      Preserved-set mode given by ``preserved``).

    ``solver="stabilized"`` (default) gives the deterministic,
    visit-order-independent solution; ``"round-robin"`` is the paper's
    chaotic iteration (see DESIGN.md §5 "solver modes"); ``"scc"`` is the
    sparse SCC-scheduled engine (:mod:`repro.dataflow.sched`) — same
    fixpoints, far fewer node updates on mostly-acyclic graphs;
    ``"scc-dense"`` additionally routes large cyclic regions through the
    vectorized dense evaluator (:mod:`repro.dataflow.dense`) —
    byte-identical fixpoints, matrix-shaped inner loop.  ``dense`` (a
    :class:`repro.dataflow.dense.DenseConfig`) tunes the dense-region
    thresholds and wavefront ``workers`` for either scc engine.

    ``budget`` is an optional :class:`repro.dataflow.ResourceBudget`
    bounding the whole analysis; exhaustion raises
    :class:`repro.dataflow.NonConvergenceError` (see
    :func:`repro.robust.analyze_with_degradation` for the fall-back
    ladder that degrades instead of failing).

    ``record_provenance=True`` makes the solver derive a justification
    graph once converged and attach it as ``result.provenance``
    (:mod:`repro.provenance` — the substrate of ``repro explain`` and
    ``repro races --explain``).  Off by default and off-path when off.

    ``graph`` hands in an already-built PFG for ``program`` (it must be
    *the* PFG of that exact AST) — used by callers that needed the graph
    before deciding to run the full analysis (the incremental engine's
    fallback path), so the build isn't paid twice when caching is off.

    ``cache=True`` (default) memoizes by program digest in
    :data:`repro.dataflow.cache.GLOBAL_CACHE`: a warm call on an
    unchanged program returns the cached result with **zero** solver
    passes (the hit lands in the ``cache.*`` counters of
    :mod:`repro.obs`).  Budget-guarded runs bypass the full-result cache
    — a budget asks for the work to actually run under a guard.
    """
    from .dataflow.cache import GLOBAL_CACHE, MISSING, cached_build_pfg, program_digest

    use_cache = cache and budget is None and GLOBAL_CACHE.enabled
    key = None
    if use_cache:
        key = (
            "analyze",
            program_digest(program),
            backend,
            order,
            solver,
            preserved,
            record_provenance,
            # Dense thresholds change dispatch counts in result.stats
            # (never the sets); workers change neither — see DenseConfig.key.
            dense.key() if dense is not None else None,
        )
        # Results are only valid for the exact AST analyzed (PFG nodes
        # hold statement objects; the interpreter matches by identity —
        # see cached_build_pfg), so a hit from a different parse of the
        # same text is rejected and recomputed.
        hit = GLOBAL_CACHE.get(
            key,
            MISSING,
            valid=lambda r: getattr(r.graph, "source_program", None) is program,
        )
        if hit is not MISSING:
            return hit
    if graph is None:
        graph = cached_build_pfg(program) if cache else build_pfg(program)
    uses_sync = bool(graph.posts_of_event or graph.waits_of_event)
    uses_parallel = bool(graph.forks) or bool(graph.pardos)
    if uses_sync:
        result = solve_synch(
            graph, backend=backend, order=order, solver=solver, preserved=preserved,
            budget=budget, record_provenance=record_provenance, dense=dense,
        )
    elif uses_parallel:
        result = solve_parallel(
            graph, backend=backend, order=order, solver=solver, budget=budget,
            record_provenance=record_provenance, dense=dense,
        )
    else:
        if solver == "stabilized":
            # The sequential system is monotone with a unique fixpoint: the
            # chaotic solver already yields the stabilized answer.
            solver = "round-robin"
        result = solve_sequential(
            graph, backend=backend, order=order, solver=solver, budget=budget,
            record_provenance=record_provenance, dense=dense,
        )
    if key is not None:
        GLOBAL_CACHE.put(key, result)
    return result


__all__ = [
    "__version__",
    "analyze",
    "obs",
    "robust",
    "optimize",
    "OptimizationReport",
    "ast",
    "build_cfg",
    "build_cssa",
    "render_cssa",
    "build_pfg",
    "compute_genkill",
    "compute_preserved",
    "is_sequential",
    "parse_program",
    "pretty",
    "ParallelFlowGraph",
    "ReachingDefsResult",
    "solve_parallel",
    "solve_sequential",
    "solve_synch",
    "to_dot",
    "validate_pfg",
]
