"""repro — reaching definitions for explicitly parallel programs.

A reproduction of Grunwald & Srinivasan, *Data Flow Equations for
Explicitly Parallel Programs* (CU-CS-605-92, PPoPP 1993): a mini-PCF
front end, the Parallel Flow Graph, the paper's sequential / parallel /
synchronized reaching-definitions equation systems, the Preserved-set
approximation, optimization clients, and a concurrent interpreter used as
a dynamic soundness oracle.

Quickstart::

    from repro import analyze, parse_program

    prog = parse_program(source_text)
    result = analyze(prog)             # picks the right equation system
    result.reaching("6", "k")          # defs of k reaching block (6)
"""

from __future__ import annotations

from . import obs, robust
from .cfg import build_cfg, is_sequential
from .cssa import build_cssa, render_cssa
from .driver import OptimizationReport, optimize
from .lang import ast, parse_program, pretty
from .pfg import ParallelFlowGraph, build_pfg, to_dot, validate_pfg
from .reachdefs import (
    ReachingDefsResult,
    compute_genkill,
    compute_preserved,
    solve_parallel,
    solve_sequential,
    solve_synch,
)

__version__ = "1.0.0"


def analyze(
    program: "ast.Program",
    backend: str = "bitset",
    order: str = "document",
    solver: str = "stabilized",
    preserved: str = "approx",
    budget=None,
) -> ReachingDefsResult:
    """Analyze ``program`` with the most precise applicable equation system.

    * sequential program → §2 classical reaching definitions;
    * parallel sections / parallel do, no synchronization → §5 parallel
      system;
    * synchronization present → §6 synchronized system (with the
      Preserved-set mode given by ``preserved``).

    ``solver="stabilized"`` (default) gives the deterministic,
    visit-order-independent solution; ``"round-robin"`` is the paper's
    chaotic iteration (see DESIGN.md §5 "solver modes").

    ``budget`` is an optional :class:`repro.dataflow.ResourceBudget`
    bounding the whole analysis; exhaustion raises
    :class:`repro.dataflow.NonConvergenceError` (see
    :func:`repro.robust.analyze_with_degradation` for the fall-back
    ladder that degrades instead of failing).
    """
    graph = build_pfg(program)
    uses_sync = bool(graph.posts_of_event or graph.waits_of_event)
    uses_parallel = bool(graph.forks) or bool(graph.pardos)
    if uses_sync:
        return solve_synch(
            graph, backend=backend, order=order, solver=solver, preserved=preserved,
            budget=budget,
        )
    if uses_parallel:
        return solve_parallel(graph, backend=backend, order=order, solver=solver, budget=budget)
    if solver == "stabilized":
        # The sequential system is monotone with a unique fixpoint: the
        # chaotic solver already yields the stabilized answer.
        solver = "round-robin"
    return solve_sequential(graph, backend=backend, order=order, solver=solver, budget=budget)


__all__ = [
    "__version__",
    "analyze",
    "obs",
    "robust",
    "optimize",
    "OptimizationReport",
    "ast",
    "build_cfg",
    "build_cssa",
    "render_cssa",
    "build_pfg",
    "compute_genkill",
    "compute_preserved",
    "is_sequential",
    "parse_program",
    "pretty",
    "ParallelFlowGraph",
    "ReachingDefsResult",
    "solve_parallel",
    "solve_sequential",
    "solve_synch",
    "to_dot",
    "validate_pfg",
]
