"""Incremental re-analysis over the SCC condensation.

The reuse argument (why this is *byte-identical*, not approximate):

1. ``solve_scc`` evaluates condensation regions in topological order,
   each to its region-local least fixpoint; the module docstring of
   :mod:`repro.dataflow.sched` proves that composing region-local least
   fixpoints (upstream final, downstream ⊥) yields the global least
   fixpoint.
2. A *clean* region — every node trusted by :func:`match_graphs
   <repro.incremental.diff.match_graphs>` and no dirty region upstream —
   has equations isomorphic to its base counterpart under the node/def
   correspondence, and reads only values from clean regions.  By
   induction along the condensation order, the base rows mapped through
   the definition correspondence *are* its region-local least fixpoint.
3. Installing those mapped rows and re-running only the dirty cone is
   therefore the same computation ``solve_scc`` would have performed
   from scratch, minus region solves whose outputs are already known.

Monotone systems (§2 sequential, §5 parallel) have a unique least
fixpoint, and all solver modes are pinned to it by the agreement tests —
so the incremental answer is byte-identical to a from-scratch solve
under **any** requested deterministic solver, not just ``scc``.  The §6
synchronized system is non-monotone through the Preserved interplay and
stays whole-program: any Post/Wait on either side triggers a full-solve
fallback (counted, never wrong).

The base state lives in :data:`~repro.dataflow.cache.GLOBAL_CACHE` under
``("incr", <program digest>)``.  The key carries **no** backend, solver,
dense-threshold, or worker components on purpose: the retained rows are
backend-independent ``frozenset`` values and solver choice never changes
them, so one base serves every configuration — this is the same
wall-clock-only-knobs-out-of-identity contract as
:meth:`DenseConfig.key <repro.dataflow.dense.DenseConfig.key>` (which
excludes ``workers``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..dataflow.cache import GLOBAL_CACHE, MISSING, cached_build_pfg, program_digest
from ..dataflow.dense import DenseConfig
from ..dataflow.sched import get_schedule, solve_scc
from ..dataflow.solver import make_order
from ..lang import ast
from ..obs import get_metrics
from ..pfg import ParallelFlowGraph, build_pfg
from ..reachdefs.parallel import ParallelRDSystem
from ..reachdefs.result import ReachingDefsResult
from ..reachdefs.sequential import SequentialRDSystem
from .diff import dirty_regions, match_graphs

#: Engine-level fallback reasons (the serve worker adds "base-miss" and
#: "degraded" at the request layer — see docs/incremental.md for the
#: full matrix).
FALLBACK_SYNC = "sync"
FALLBACK_UNMATCHED = "unmatched"
FALLBACK_SYSTEM = "system-mismatch"
FALLBACK_UNMAPPED = "unmapped-defs"


def _family(graph: ParallelFlowGraph) -> str:
    if graph.posts_of_event or graph.waits_of_event:
        return "synch"
    if graph.forks or graph.pardos:
        return "parallel"
    return "sequential"


@dataclass
class IncrementalBase:
    """Retained state from one full analysis: the program, its PFG, and
    the solved rows — everything a later delta needs."""

    program: ast.Program
    graph: ParallelFlowGraph
    result: ReachingDefsResult
    digest: str = ""

    def __post_init__(self):
        if not self.digest:
            self.digest = program_digest(self.program)

    @classmethod
    def from_result(cls, program: ast.Program, result: ReachingDefsResult) -> "IncrementalBase":
        return cls(program=program, graph=result.graph, result=result)


@dataclass
class IncrementalOutcome:
    """What an incremental request produced: the (always-present) result
    plus the reuse/fallback provenance that lands on serve responses."""

    result: ReachingDefsResult
    base_digest: str
    regions_reused: int = 0
    regions_solved: int = 0
    nodes_matched: int = 0
    nodes_dirty: int = 0
    fallback: Optional[str] = None

    def stamp(self) -> Dict[str, object]:
        """The ``incremental`` provenance block for responses/CLI."""
        return {
            "base_digest": self.base_digest,
            "regions_reused": self.regions_reused,
            "regions_resolved": self.regions_solved,
            "nodes_matched": self.nodes_matched,
            "nodes_dirty": self.nodes_dirty,
            "fallback": self.fallback,
        }

    def to_base(self, program: ast.Program) -> IncrementalBase:
        """Promote this outcome to the base for the next edit in a chain."""
        return IncrementalBase.from_result(program, self.result)


def store_base(program: ast.Program, result: ReachingDefsResult,
               cache=None) -> Optional[IncrementalBase]:
    """Retain ``result`` as the incremental base for ``program``.

    Stored under ``("incr", digest)`` — deliberately no backend / solver
    / dense / workers components (see module docstring).  Results from
    systems the engine cannot extend (conservative, synch) are stored
    too: a later delta against them falls back cleanly, and the entry
    still answers "have we seen this digest".
    """
    cache = GLOBAL_CACHE if cache is None else cache
    if not cache.enabled:
        return None
    base = IncrementalBase.from_result(program, result)
    cache.put(("incr", base.digest), base)
    return base


def lookup_base(digest: str, cache=None) -> Optional[IncrementalBase]:
    """The retained base for ``digest``, or ``None`` (→ full-solve path)."""
    cache = GLOBAL_CACHE if cache is None else cache
    hit = cache.get(("incr", digest), MISSING)
    return None if hit is MISSING else hit


def _full_solve(
    program: ast.Program,
    *,
    backend: str,
    solver: str,
    preserved: str,
    budget,
    dense,
    cache: bool,
    graph: Optional[ParallelFlowGraph] = None,
) -> ReachingDefsResult:
    from .. import analyze  # deferred: repro/__init__ is heavyweight

    return analyze(
        program,
        backend=backend,
        solver=solver,
        preserved=preserved,
        budget=budget,
        cache=cache,
        dense=dense,
        graph=graph,
    )


def incremental_analyze(
    base: IncrementalBase,
    program: ast.Program,
    *,
    backend: str = "bitset",
    solver: str = "stabilized",
    preserved: str = "approx",
    budget=None,
    dense: Optional[DenseConfig] = None,
    verify: bool = False,
    cache: bool = True,
) -> IncrementalOutcome:
    """Re-analyze ``program`` reusing ``base`` where the diff allows.

    Always returns a terminal outcome: on any fallback condition (sync
    involvement, unusable base system, structurally unmatched diff,
    unmappable retained rows) the engine runs the ordinary full analysis
    and reports the reason in ``outcome.fallback`` — callers never need
    a second code path.  ``verify=True`` makes the partial solve run the
    scheduler's full verification sweep (every node, including seeded
    ones, is re-evaluated and must be stable) — the strongest runtime
    check that reuse was sound.

    Reuse is solver-independent (see module docstring), so ``solver``
    only affects the fallback path and the result's provenance; the
    dirty cone itself is always evaluated by the scc engine (honouring
    ``dense``, including wavefront workers).
    """
    metrics = get_metrics()
    metrics.inc("solve.incr.requests")
    graph = cached_build_pfg(program) if cache else build_pfg(program)

    def fall_back(reason: str) -> IncrementalOutcome:
        metrics.inc("solve.incr.fallbacks")
        # The graph built for matching is handed through — the fallback
        # must not pay PFG construction twice (the overhead gate in
        # benchmarks/run_incremental.py pins this at <= 5%).
        result = _full_solve(
            program, backend=backend, solver=solver, preserved=preserved,
            budget=budget, dense=dense, cache=cache, graph=graph,
        )
        if cache:
            store_base(program, result)
        return IncrementalOutcome(
            result=result, base_digest=base.digest, fallback=reason
        )
    family = _family(graph)
    if family == "synch" or _family(base.graph) == "synch":
        return fall_back(FALLBACK_SYNC)
    if base.result.system != family:
        # The base rows come from a different equation system (degraded
        # conservative rung, or the program changed family entirely).
        return fall_back(FALLBACK_SYSTEM)

    match = match_graphs(base.graph, graph)
    if match.n_matched == 0:
        return fall_back(FALLBACK_UNMATCHED)

    if family == "parallel":
        system = ParallelRDSystem(graph, backend=backend)
        base_rows = {
            "In": base.result.in_sets,
            "Out": base.result.out_sets,
            "ACCKillin": base.result.acc_killin,
            "ACCKillout": base.result.acc_killout,
            "ForkKill": base.result.fork_kill,
        }
    else:
        system = SequentialRDSystem(graph, backend=backend)
        base_rows = {"_in": base.result.in_sets, "_out": base.result.out_sets}

    schedule = get_schedule(system)
    dirty = dirty_regions(match, schedule)
    clean = frozenset(r.index for r in schedule.regions) - dirty

    # Pre-map the retained rows for every clean node.  By the cone
    # argument every definition in a clean row originates upstream of the
    # dirty frontier and must be mapped; an unmapped def means the match
    # under-approximated the perturbation — fall back rather than risk it.
    seeded: Dict[str, Dict[object, object]] = {slot: {} for slot in base_rows}
    known: Dict[str, Dict[object, frozenset]] = {slot: {} for slot in base_rows}
    # Distinct row values repeat heavily across nodes and slots (a
    # single-pred node's In IS its predecessor's Out; kill rows repeat
    # across a construct) — map each distinct frozenset once.
    memo: Dict[frozenset, tuple] = {}
    try:
        for region in schedule.regions:
            if region.index not in clean:
                continue
            for node in region.nodes:
                b = match.new_to_base[node]
                for slot, rows in base_rows.items():
                    row = rows[b]
                    cached = memo.get(row)
                    if cached is None:
                        mapped = [match.def_map[d] for d in row]
                        # The frozenset view rides along so to_result()
                        # skips re-materializing final clean rows.
                        cached = (system.ops.from_defs(mapped), frozenset(mapped))
                        memo[row] = cached
                    seeded[slot][node], known[slot][node] = cached
    except KeyError:
        return fall_back(FALLBACK_UNMAPPED)

    def install() -> None:
        for slot, values in seeded.items():
            target = getattr(system, slot)
            target.update(values)

    dense_cfg = dense
    if solver == "scc-dense" and dense_cfg is None:
        dense_cfg = DenseConfig(mode="always")
    stats = solve_scc(
        system,
        make_order(graph, "document"),
        order_name="incr/scc",
        budget=budget,
        verify=verify,
        dense=dense_cfg,
        skip_regions=clean,
        seed=install,
    )
    result = system.to_result(stats, known=known)
    metrics.inc("solve.incr.regions_reused", stats.regions_reused)
    metrics.inc("solve.incr.regions_resolved", stats.regions_solved)
    if cache:
        store_base(program, result)
    return IncrementalOutcome(
        result=result,
        base_digest=base.digest,
        regions_reused=stats.regions_reused,
        regions_solved=stats.regions_solved,
        nodes_matched=match.n_matched,
        nodes_dirty=len(match.dirty_nodes),
    )
