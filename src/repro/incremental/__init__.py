"""Incremental SCC-region re-analysis (delta solving).

Public surface::

    from repro.incremental import (
        IncrementalBase, IncrementalOutcome,
        incremental_analyze, store_base, lookup_base,
    )

    base = IncrementalBase.from_result(prog_v1, analyze(prog_v1, solver="scc"))
    outcome = incremental_analyze(base, prog_v2)
    outcome.result          # byte-identical to analyze(prog_v2)
    outcome.regions_reused  # condensation regions skipped verbatim

See :mod:`repro.incremental.engine` for the reuse/soundness argument,
:mod:`repro.incremental.diff` for the version matcher, and
``docs/incremental.md`` for the dirty-frontier algorithm, the fallback
matrix, and the serve delta wire form.
"""

from .diff import GraphMatch, dirty_regions, match_graphs, node_fingerprint
from .engine import (
    FALLBACK_SYNC,
    FALLBACK_SYSTEM,
    FALLBACK_UNMAPPED,
    FALLBACK_UNMATCHED,
    IncrementalBase,
    IncrementalOutcome,
    incremental_analyze,
    lookup_base,
    store_base,
)

__all__ = [
    "GraphMatch",
    "IncrementalBase",
    "IncrementalOutcome",
    "FALLBACK_SYNC",
    "FALLBACK_SYSTEM",
    "FALLBACK_UNMAPPED",
    "FALLBACK_UNMATCHED",
    "dirty_regions",
    "incremental_analyze",
    "lookup_base",
    "match_graphs",
    "node_fingerprint",
    "store_base",
]
