"""Structural diff between two program versions at PFG-node granularity.

The incremental engine (:mod:`repro.incremental.engine`) never patches a
graph in place — the new program's PFG is built from scratch (graph
construction is linear and cheap next to fixpoint iteration).  What this
module recovers is the *correspondence* between the base and new graphs:
which new nodes are statement-for-statement identical to a base node,
and how the base solve's :class:`~repro.ir.defs.Definition` objects map
onto the new definition table.  Everything the engine reuses flows
through that correspondence.

Matching is content-based, not name-based: a node's fingerprint is its
kind plus the *rendered text* of its statements, wait/post events,
branch condition, and loop-header flag.  Node names, ids, and definition
indices are deliberately excluded — inserting a statement early in the
program renumbers everything downstream, and a renumbered-but-unchanged
suffix must still match.  The two fingerprint sequences (in document
order, which the builder emits deterministically) are aligned with
:class:`difflib.SequenceMatcher`, the same machinery ``diff`` tools use:
for the near-identical sequences an edit produces this is effectively
linear and recovers the unique common structure.

A matched pair is only *trusted* (eligible for row reuse) when its local
environment matched too:

* every in-edge ``(pred, kind)`` corresponds under the match (same
  multiset after mapping base preds to new preds) — this covers
  sequential, parallel, **and** back edges, so loop membership changes
  are caught structurally;
* for joins, the technical fork link corresponds (the §5 join equations
  read ``ForkKill[fork]``);
* gen/kill/parallel-kill/other-defs agree under the definition map —
  this is the global net: inserting or deleting *any* definition of
  variable ``v`` perturbs the kill sets of **every** node assigning
  ``v``, and those nodes become dirty here even though their own text
  never changed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from difflib import SequenceMatcher
from typing import Dict, List, Optional, Set, Tuple

from ..ir.defs import Definition
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode
from ..reachdefs.genkill import compute_genkill

Fingerprint = Tuple[object, ...]


def node_fingerprint(node: PFGNode) -> Fingerprint:
    """Content identity of one PFG node — everything its own equations
    depend on locally, nothing positional (no ids, names, or def
    indices)."""
    return (
        node.kind.value,
        node.wait_event,
        tuple(f"{type(s).__name__}|{s}" for s in node.stmts),
        node.post_event,
        str(node.cond) if node.cond is not None else None,
        node.is_loop_header,
    )


@dataclass
class GraphMatch:
    """The recovered correspondence between a base and a new PFG."""

    base: ParallelFlowGraph
    new: ParallelFlowGraph
    #: trusted pairs only (environment checks passed)
    base_to_new: Dict[PFGNode, PFGNode] = field(default_factory=dict)
    new_to_base: Dict[PFGNode, PFGNode] = field(default_factory=dict)
    #: base Definition -> new Definition, for defs of trusted nodes
    def_map: Dict[Definition, Definition] = field(default_factory=dict)
    #: new nodes with no trusted base counterpart — the dirty frontier
    dirty_nodes: Set[PFGNode] = field(default_factory=set)

    @property
    def n_matched(self) -> int:
        return len(self.new_to_base)


def _aligned_pairs(
    base: ParallelFlowGraph, new: ParallelFlowGraph
) -> Tuple[List[Tuple[PFGNode, PFGNode]], List[Tuple[List[PFGNode], List[PFGNode]]]]:
    """Longest-common-subsequence alignment of the two document-order
    fingerprint sequences.

    Returns ``(pairs, gaps)``: the aligned node pairs, plus the
    ``replace`` gaps — runs of base nodes rewritten into runs of new
    nodes with no fingerprint match.  Gap nodes are dirty by definition,
    but their *definitions* may still correspond (an edited right-hand
    side keeps the def of its target alive at the same site), which
    matters for the kill-universe comparison on untouched bystanders.
    """
    base_nodes = base.document_order()
    new_nodes = new.document_order()
    base_fps = [node_fingerprint(n) for n in base_nodes]
    new_fps = [node_fingerprint(n) for n in new_nodes]
    matcher = SequenceMatcher(None, base_fps, new_fps, autojunk=False)
    pairs: List[Tuple[PFGNode, PFGNode]] = []
    gaps: List[Tuple[List[PFGNode], List[PFGNode]]] = []
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "equal":
            for k in range(i2 - i1):
                pairs.append((base_nodes[i1 + k], new_nodes[j1 + k]))
        elif tag == "replace":
            gaps.append((base_nodes[i1:i2], new_nodes[j1:j2]))
    return pairs, gaps


def _gap_def_pairs(
    gaps: List[Tuple[List[PFGNode], List[PFGNode]]]
) -> List[Tuple[Definition, Definition]]:
    """Per-variable positional pairing of definitions inside each replace
    gap: the i-th def of ``v`` on the base side corresponds to the i-th
    def of ``v`` on the new side.  A def with no partner (the edit
    really did add/remove a definition of ``v``) stays unmapped — and
    every bystander node killing ``v`` then fails the gen/kill agreement
    check and joins the dirty cone, which is exactly the §2/§5
    perturbation an added/removed definition causes.
    """
    out: List[Tuple[Definition, Definition]] = []
    for base_run, new_run in gaps:
        by_var: Dict[str, List[Definition]] = {}
        for node in base_run:
            for d in node.defs:
                by_var.setdefault(d.var, []).append(d)
        seen: Dict[str, int] = {}
        for node in new_run:
            for d in node.defs:
                i = seen.get(d.var, 0)
                seen[d.var] = i + 1
                partners = by_var.get(d.var, ())
                if i < len(partners):
                    out.append((partners[i], d))
    return out


def _edges_correspond(
    pair_map: Dict[PFGNode, PFGNode], b: PFGNode, n: PFGNode, match: GraphMatch
) -> bool:
    """The in-edge multisets agree under the (candidate) match, and the
    join→fork technical link survives."""
    mapped = []
    for pred, kind in match.base.in_edges(b):
        image = pair_map.get(pred)
        if image is None:
            return False  # an in-edge from an unmatched node: environment changed
        mapped.append((image.id, kind))
    actual = [(pred.id, kind) for pred, kind in match.new.in_edges(n)]
    if sorted(mapped, key=repr) != sorted(actual, key=repr):
        return False
    if n.is_join:
        if b.fork is None or n.fork is None:
            return b.fork is None and n.fork is None
        return pair_map.get(b.fork) is n.fork
    return True


def _genkill_agrees(
    b: PFGNode, n: PFGNode, match: GraphMatch, base_gk, new_gk
) -> bool:
    """gen/kill/parallel-kill/other-defs are equal after mapping base
    definitions into the new table.  Any base def with no image (its
    defining node was edited away) makes the node dirty."""
    for base_table, new_table in (
        (base_gk.gen, new_gk.gen),
        (base_gk.kill, new_gk.kill),
        (base_gk.parallel_kill, new_gk.parallel_kill),
        (base_gk.other_defs, new_gk.other_defs),
    ):
        want = set()
        for d in base_table[b]:
            image = match.def_map.get(d)
            if image is None:
                return False
            want.add(image)
        if want != set(new_table[n]):
            return False
    return True


def match_graphs(base: ParallelFlowGraph, new: ParallelFlowGraph) -> GraphMatch:
    """Compute the trusted correspondence between ``base`` and ``new``.

    Runs in three passes: (1) LCS alignment over fingerprints, (2) the
    definition map from aligned defining nodes (fingerprint equality
    forces equal per-node def counts in statement order), (3) the
    environment checks — edge correspondence and gen/kill agreement —
    which demote aligned-but-perturbed nodes to dirty.  Every new node
    that is not in a *trusted* pair lands in ``dirty_nodes``.
    """
    match = GraphMatch(base=base, new=new)
    pairs, gaps = _aligned_pairs(base, new)
    pair_map: Dict[PFGNode, PFGNode] = {b: n for b, n in pairs}
    # Pass 2: the def map covers all *aligned* nodes (not just trusted
    # ones) plus surviving defs inside replace gaps — a dirty node's
    # defs still keep their identity, and the gen/kill comparison needs
    # the full picture to decide trust.
    for b, n in pairs:
        for bd, nd in zip(b.defs, n.defs):
            match.def_map[bd] = nd
    for bd, nd in _gap_def_pairs(gaps):
        match.def_map[bd] = nd
    base_gk = compute_genkill(base)
    new_gk = compute_genkill(new)
    trusted: List[Tuple[PFGNode, PFGNode]] = []
    for b, n in pairs:
        if _edges_correspond(pair_map, b, n, match) and _genkill_agrees(
            b, n, match, base_gk, new_gk
        ):
            trusted.append((b, n))
    match.base_to_new = {b: n for b, n in trusted}
    match.new_to_base = {n: b for b, n in trusted}
    match.dirty_nodes = {n for n in new.nodes if n not in match.new_to_base}
    return match


def dirty_regions(match: GraphMatch, schedule) -> Set[int]:
    """Region indices invalidated by the match: every region containing a
    dirty node, closed forward over the condensation DAG (one pass in
    topological order — ``schedule.regions`` is already topsorted)."""
    dirty: Set[int] = set()
    for n in match.dirty_nodes:
        dirty.add(schedule.region_of[n])
    for region in schedule.regions:
        if region.index in dirty:
            for node in region.nodes:
                for dep in schedule.dependents.get(node, ()):
                    dirty.add(schedule.region_of[dep])
    return dirty
