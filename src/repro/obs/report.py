"""Cross-run telemetry aggregation (``repro obs report``).

One CI run leaves several JSONL artifacts behind: ``--profile`` exports
(``repro-obs/1``), batch manifests (``repro-batch/1``), and fuzz-campaign
manifests (``repro-fuzz/1``).  Each answers questions about *its* run;
none answers "how did the fleet do?".  This module ingests any mix of the
three schemas and folds them into **one** deterministic summary:

* counter totals across every run (batch per-task counters included);
* histogram aggregates with p50/p90/p99 over the *merged* sample
  reservoirs (:meth:`repro.obs.metrics.Histogram.merge_state` — summary
  stats alone cannot be combined into percentiles);
* per-outcome task tables for batch tasks and fuzz cases/drills;
* the top-k slowest spans across every profile.

Determinism contract: the report is a pure function of the input *file
set* — inputs are ingested in sorted-path order, every collection in the
output is sorted, and no wall-clock or environment data is stamped in —
so two aggregations of the same files are byte-identical
(``render_report`` and ``json.dumps(report, sort_keys=True)`` both).

Baselines: ``write_baseline`` persists a report as
``repro-obs-report/1`` JSON; :func:`compare_to_baseline` diffs a fresh
report against it and returns the regressions — counter totals growing
past ``baseline × (1 + tolerance)``, or more failure-status tasks than
the baseline had.  The CLI turns a non-empty regression list into exit
code 2, making the aggregate a CI gate.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .metrics import Histogram
from .sinks import read_jsonl

__all__ = [
    "REPORT_SCHEMA",
    "FAILURE_STATUSES",
    "ReportError",
    "aggregate",
    "render_report",
    "write_baseline",
    "read_baseline",
    "compare_to_baseline",
]

REPORT_SCHEMA = "repro-obs-report/1"

#: Known input schemas → the record ``type`` carrying per-unit outcomes.
_INPUT_SCHEMAS = ("repro-obs/1", "repro-batch/1", "repro-fuzz/1")

#: Task statuses that count as failures for the baseline gate (the
#: nonzero-exit statuses of the batch contract, plus the fuzz ``failed``).
FAILURE_STATUSES = frozenset(
    {"error", "failed", "invariant", "dynamic-failure", "crashed"}
)

Record = Dict[str, object]


class ReportError(ValueError):
    """An input file is unreadable or not a recognized manifest."""


class _Accumulator:
    """Mutable aggregation state; :meth:`report` freezes it to the output."""

    def __init__(self) -> None:
        self.files: List[str] = []
        self.by_schema: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}
        self.gauge_max: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        # kind ("batch task" / "fuzz case" / ...) → status → [count, wall]
        self.tasks: Dict[str, Dict[str, List[float]]] = {}
        self.spans: List[Record] = []

    # -- folding helpers ------------------------------------------------

    def add_counter(self, name: str, value: int) -> None:
        if value:
            self.counters[name] = self.counters.get(name, 0) + int(value)

    def add_gauge(self, name: str, value: float) -> None:
        if name not in self.gauge_max or value > self.gauge_max[name]:
            self.gauge_max[name] = float(value)

    def add_histogram(self, name: str, state: Record) -> None:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        h.merge_state(state)

    def add_task(self, kind: str, status: str, wall_s: float) -> None:
        per_status = self.tasks.setdefault(kind, {})
        cell = per_status.setdefault(status, [0, 0.0])
        cell[0] += 1
        cell[1] += float(wall_s)

    # -- per-schema ingestion -------------------------------------------

    def ingest(self, path: Union[str, Path]) -> None:
        path = Path(path)
        try:
            records = read_jsonl(path)
        except OSError as err:
            raise ReportError(f"{path}: {err}") from err
        except json.JSONDecodeError as err:
            raise ReportError(f"{path}: not JSONL ({err})") from err
        if not records or records[0].get("type") != "meta":
            raise ReportError(f"{path}: no leading meta record")
        schema = str(records[0].get("schema"))
        if schema not in _INPUT_SCHEMAS:
            known = ", ".join(_INPUT_SCHEMAS)
            raise ReportError(f"{path}: unknown schema {schema!r} (expected one of {known})")
        self.files.append(str(path))
        self.by_schema[schema] = self.by_schema.get(schema, 0) + 1
        fold = {
            "repro-obs/1": self._ingest_obs,
            "repro-batch/1": self._ingest_batch,
            "repro-fuzz/1": self._ingest_fuzz,
        }[schema]
        for record in records[1:]:
            fold(record)

    def _ingest_obs(self, record: Record) -> None:
        kind = record.get("type")
        name = str(record.get("name"))
        if kind == "counter":
            self.add_counter(name, int(record.get("value", 0)))
        elif kind == "gauge":
            self.add_gauge(name, float(record.get("max", record.get("value", 0.0))))
        elif kind == "histogram":
            self.add_histogram(name, record)
        elif kind == "span":
            self.spans.append(
                {
                    "path": str(record.get("path", name)),
                    "dur": float(record.get("dur", 0.0)),
                }
            )

    def _ingest_batch(self, record: Record) -> None:
        if record.get("type") != "task":
            return
        self.add_task(
            "batch task", str(record.get("status")), float(record.get("wall_s", 0.0))
        )
        for name, value in (record.get("counters") or {}).items():
            self.add_counter(str(name), int(value))
        metrics = record.get("metrics") or {}
        for name, snap in (metrics.get("gauges") or {}).items():
            self.add_gauge(str(name), float(snap.get("max", snap.get("value", 0.0))))
        for name, snap in (metrics.get("histograms") or {}).items():
            self.add_histogram(str(name), snap)

    def _ingest_fuzz(self, record: Record) -> None:
        kind = record.get("type")
        if kind in ("case", "drill"):
            self.add_task(
                f"fuzz {kind}", str(record.get("status")), float(record.get("wall_s", 0.0))
            )

    # -- freeze ---------------------------------------------------------

    def report(self, top: int = 10) -> Record:
        histograms: Dict[str, Record] = {}
        for name, h in sorted(self.histograms.items()):
            histograms[name] = {
                "count": h.count,
                "total": round(h.total, 9),
                "min": h.min,
                "max": h.max,
                "mean": round(h.mean, 9),
                "p50": h.percentile(50),
                "p90": h.percentile(90),
                "p99": h.percentile(99),
            }
        tasks: Dict[str, Record] = {}
        for kind, per_status in sorted(self.tasks.items()):
            by_status = {
                status: {"count": int(cell[0]), "wall_s": round(cell[1], 6)}
                for status, cell in sorted(per_status.items())
            }
            tasks[kind] = {
                "total": sum(int(cell[0]) for cell in per_status.values()),
                "failures": sum(
                    int(cell[0])
                    for status, cell in per_status.items()
                    if status in FAILURE_STATUSES
                ),
                "by_status": by_status,
            }
        # Slowest spans; ties broken by path then duration so the cut is
        # stable however the inputs were ordered.
        slowest = sorted(self.spans, key=lambda s: (-s["dur"], s["path"]))[: max(top, 0)]
        return {
            "schema": REPORT_SCHEMA,
            "inputs": {
                "files": sorted(self.files),
                "by_schema": dict(sorted(self.by_schema.items())),
            },
            "counters": dict(sorted(self.counters.items())),
            "gauges": {
                name: {"max": value} for name, value in sorted(self.gauge_max.items())
            },
            "histograms": histograms,
            "tasks": tasks,
            "spans": {"total": len(self.spans), "slowest": slowest},
        }


def aggregate(paths: Sequence[Union[str, Path]], top: int = 10) -> Record:
    """Aggregate JSONL manifests into one ``repro-obs-report/1`` dict.

    ``paths`` may mix the three input schemas freely; they are ingested
    in sorted order so the result is independent of argument order.
    Raises :class:`ReportError` on an unreadable or unrecognized input.
    """
    if not paths:
        raise ReportError("no input files")
    acc = _Accumulator()
    for path in sorted(str(p) for p in paths):
        acc.ingest(path)
    return acc.report(top=top)


def _fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_report(report: Record) -> str:
    """Deterministic human-readable summary of an aggregated report."""
    inputs = report["inputs"]
    by_schema = ", ".join(f"{n} {s}" for s, n in inputs["by_schema"].items())
    lines = [f"obs report: {len(inputs['files'])} file(s) — {by_schema}"]
    tasks = report["tasks"]
    if tasks:
        lines.append("")
        lines.append("tasks:")
        for kind, table in tasks.items():
            statuses = ", ".join(
                f"{cell['count']} {status}" for status, cell in table["by_status"].items()
            )
            lines.append(f"  {kind}: {table['total']} total ({statuses})")
    counters = report["counters"]
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"  {value:>12}  {name}")
    histograms = report["histograms"]
    if histograms:
        lines.append("")
        lines.append("histograms (count / mean / p50 / p90 / p99 / max):")
        for name, h in histograms.items():
            lines.append(
                f"  {h['count']:>8} / {_fmt(h['mean'])} / {_fmt(h['p50'])}"
                f" / {_fmt(h['p90'])} / {_fmt(h['p99'])} / {_fmt(h['max'])}  {name}"
            )
    spans = report["spans"]
    if spans["slowest"]:
        lines.append("")
        lines.append(f"slowest spans (of {spans['total']}):")
        for s in spans["slowest"]:
            lines.append(f"  {s['dur'] * 1e3:10.3f} ms  {s['path']}")
    return "\n".join(lines) + "\n"


def write_baseline(path: Union[str, Path], report: Record) -> None:
    """Persist an aggregated report as a baseline JSON file."""
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")


def read_baseline(path: Union[str, Path]) -> Record:
    """Load a baseline; validates the schema stamp."""
    try:
        data = json.loads(Path(path).read_text())
    except OSError as err:
        raise ReportError(f"{path}: {err}") from err
    except json.JSONDecodeError as err:
        raise ReportError(f"{path}: not JSON ({err})") from err
    if not isinstance(data, dict) or data.get("schema") != REPORT_SCHEMA:
        raise ReportError(f"{path}: not a {REPORT_SCHEMA} baseline")
    return data


def compare_to_baseline(
    report: Record, baseline: Record, tolerance: float = 0.1
) -> List[str]:
    """Regressions of ``report`` against ``baseline`` (empty = pass).

    * a counter total exceeding ``baseline × (1 + tolerance)`` (counters
      absent from the baseline are *informational*, not regressions —
      new instrumentation must not fail the gate);
    * any task kind reporting more :data:`FAILURE_STATUSES` tasks than
      the baseline recorded.
    """
    problems: List[str] = []
    base_counters = baseline.get("counters", {})
    for name, value in report.get("counters", {}).items():
        base = base_counters.get(name)
        if base is None:
            continue
        allowed = base * (1.0 + tolerance)
        if value > allowed:
            problems.append(
                f"counter {name}: {value} exceeds baseline {base} "
                f"(+{tolerance:.0%} tolerance = {allowed:.1f})"
            )
    base_tasks = baseline.get("tasks", {})
    for kind, table in report.get("tasks", {}).items():
        failures = int(table.get("failures", 0))
        base_failures = int(base_tasks.get(kind, {}).get("failures", 0))
        if failures > base_failures:
            problems.append(
                f"{kind}: {failures} failure(s) vs {base_failures} in baseline"
            )
    return problems
