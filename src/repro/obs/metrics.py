"""Metrics registry: counters, gauges and histograms.

Instruments in the solver/interpreter hot paths follow two rules so the
disabled default costs (almost) nothing:

* ask for the process-current registry once (``m = get_metrics()``) and
  hoist per-iteration work behind ``m.enabled``;
* prefer one post-hoc ``inc(name, total)`` over N live ``inc(name)``
  calls when an existing counter (e.g. ``SolveStats``) already has the
  total.

Names are dotted paths (``solve.node_updates``, ``interp.steps``); the
per-order solver metrics interpolate the order name
(``solve.rpo.passes``).  :data:`NULL_METRICS` is the disabled singleton:
every mutator is a no-op and every accessor returns shared inert
instruments.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "RESERVOIR_SIZE",
    "get_metrics",
    "set_metrics",
]

#: Bound on stored histogram samples.  Beyond this many observations the
#: histogram keeps a uniform random sample (reservoir sampling), so
#: percentiles stay estimable at O(1) memory however long the run.
RESERVOIR_SIZE = 512

#: Fixed reservoir seed: the kept sample is a pure function of the
#: observation sequence, so identical runs report identical percentiles.
_RESERVOIR_SEED = 0x5EED


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-set value, with the observed maximum kept alongside."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value: float = 0.0
        self.max: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value


class Histogram:
    """Streaming summary plus a bounded sample reservoir.

    ``count``/``total``/``min``/``max`` are exact over every observation;
    percentiles come from a :data:`RESERVOIR_SIZE`-bounded uniform sample
    (Vitter's Algorithm R with a fixed per-instance seed, so the reservoir
    — and hence every reported percentile — is a deterministic function of
    the observation sequence)."""

    __slots__ = ("count", "total", "min", "max", "_samples", "_rng")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._rng = random.Random(_RESERVOIR_SEED)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < RESERVOIR_SIZE:
            self._samples.append(value)
        else:
            # Algorithm R: the i-th observation replaces a random slot
            # with probability RESERVOIR_SIZE/i (count was just bumped).
            j = self._rng.randrange(self.count)
            if j < RESERVOIR_SIZE:
                self._samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile of the sampled values, ``None`` when no
        observation has been recorded.  ``q`` in [0, 100]."""
        if not self._samples:
            return None
        if not 0 <= q <= 100:
            raise ValueError(f"percentile out of range: {q!r}")
        ordered = sorted(self._samples)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def samples(self) -> List[float]:
        """The current reservoir, sorted (a deterministic export order —
        reservoir slots are replacement-order-dependent, values are not)."""
        return sorted(self._samples)

    def merge_state(self, state: Dict[str, object]) -> None:
        """Fold an exported histogram snapshot (see
        :meth:`Metrics.export_state`) into this instrument.

        Exact fields combine exactly; the two reservoirs concatenate and,
        when over :data:`RESERVOIR_SIZE`, downsample *deterministically*
        (sorted, evenly spaced) rather than re-randomizing — merged
        percentiles are a pure function of the merged inputs."""
        other_count = int(state.get("count", 0))
        if not other_count:
            return
        self.count += other_count
        self.total += float(state.get("total", 0.0))
        other_min = state.get("min")
        other_max = state.get("max")
        if other_min is not None and (self.min is None or other_min < self.min):
            self.min = float(other_min)
        if other_max is not None and (self.max is None or other_max > self.max):
            self.max = float(other_max)
        combined = sorted(self._samples)
        combined.extend(float(v) for v in state.get("samples", ()))
        combined.sort()
        n = len(combined)
        if n > RESERVOIR_SIZE:
            combined = [combined[(i * n) // RESERVOIR_SIZE] for i in range(RESERVOIR_SIZE)]
        self._samples = combined


class Metrics:
    """Name → instrument registry; instruments are created on first use."""

    enabled: bool = True

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on demand) ------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    # -- convenience mutators -------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def merge_counters(self, counters: Dict[str, int]) -> None:
        """Add a ``name → value`` snapshot into this registry's counters.

        This is the cross-process aggregation hook: batch workers export
        their per-task counter totals (plain dicts travel over the
        process-pool pickle boundary; live ``Metrics`` objects do not)
        and the parent session folds them in, so fleet-wide ``cache.*`` /
        ``solve.*`` counters read as if the work had run in-process.
        """
        for name, value in counters.items():
            if value:
                self.counter(name).inc(int(value))

    def merge(self, state: Dict[str, Dict[str, object]]) -> None:
        """Fold a full exported snapshot (:meth:`export_state`) into this
        registry: counters add, gauges take the incoming value (last write
        wins) with max-of-max, histograms combine exactly and merge their
        sample reservoirs deterministically.

        The complete cross-process story — :meth:`merge_counters` alone
        drops worker gauge/histogram telemetry on the floor."""
        self.merge_counters({k: int(v) for k, v in state.get("counters", {}).items()})
        for name, snap in state.get("gauges", {}).items():
            g = self.gauge(name)
            g.value = float(snap["value"])
            other_max = float(snap.get("max", snap["value"]))
            if other_max > g.max:
                g.max = other_max
        for name, snap in state.get("histograms", {}).items():
            self.histogram(name).merge_state(snap)

    # -- export ---------------------------------------------------------

    def export_state(self) -> Dict[str, Dict[str, object]]:
        """JSON/pickle-safe snapshot for :meth:`merge` on another registry
        (the worker half of cross-process aggregation)."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items()) if c.value},
            "gauges": {
                k: {"value": g.value, "max": g.max} for k, g in sorted(self.gauges.items())
            },
            "histograms": {
                k: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "samples": h.samples(),
                }
                for k, h in sorted(self.histograms.items())
                if h.count
            },
        }

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Flat snapshot keyed by instrument kind, for summaries/tests."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: {"value": g.value, "max": g.max} for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                    "mean": h.mean,
                    "p50": h.percentile(50),
                    "p90": h.percentile(90),
                    "p99": h.percentile(99),
                }
                for k, h in sorted(self.histograms.items())
            },
        }


class _NullCounter(Counter):
    def inc(self, n: int = 1) -> None:
        return None


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics(Metrics):
    """Disabled registry: mutators no-op, accessors hand out shared inert
    instruments, nothing is ever recorded."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def inc(self, name: str, n: int = 1) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def merge_counters(self, counters: Dict[str, int]) -> None:
        return None

    def merge(self, state: Dict[str, Dict[str, object]]) -> None:
        return None


NULL_METRICS = NullMetrics()

_current: Metrics = NULL_METRICS


def get_metrics() -> Metrics:
    """The registry instrumented code should report to (never ``None``)."""
    return _current


def set_metrics(metrics: Optional[Metrics]) -> Metrics:
    """Install ``metrics`` as process-current (``None`` restores the no-op);
    returns the previously installed registry."""
    global _current
    previous = _current
    _current = metrics if metrics is not None else NULL_METRICS
    return previous
