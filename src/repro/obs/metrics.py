"""Metrics registry: counters, gauges and histograms.

Instruments in the solver/interpreter hot paths follow two rules so the
disabled default costs (almost) nothing:

* ask for the process-current registry once (``m = get_metrics()``) and
  hoist per-iteration work behind ``m.enabled``;
* prefer one post-hoc ``inc(name, total)`` over N live ``inc(name)``
  calls when an existing counter (e.g. ``SolveStats``) already has the
  total.

Names are dotted paths (``solve.node_updates``, ``interp.steps``); the
per-order solver metrics interpolate the order name
(``solve.rpo.passes``).  :data:`NULL_METRICS` is the disabled singleton:
every mutator is a no-op and every accessor returns shared inert
instruments.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metrics",
    "NullMetrics",
    "NULL_METRICS",
    "get_metrics",
    "set_metrics",
]


class Counter:
    """Monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


class Gauge:
    """Last-set value, with the observed maximum kept alongside."""

    __slots__ = ("value", "max")

    def __init__(self) -> None:
        self.value: float = 0.0
        self.max: float = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max:
            self.max = value


class Histogram:
    """Streaming summary (count/total/min/max) — enough to answer "how
    long were worklists" without storing samples."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count: int = 0
        self.total: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Metrics:
    """Name → instrument registry; instruments are created on first use."""

    enabled: bool = True

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (create on demand) ------------------------

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter()
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge()
        return g

    def histogram(self, name: str) -> Histogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = Histogram()
        return h

    # -- convenience mutators -------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        self.counter(name).inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def merge_counters(self, counters: Dict[str, int]) -> None:
        """Add a ``name → value`` snapshot into this registry's counters.

        This is the cross-process aggregation hook: batch workers export
        their per-task counter totals (plain dicts travel over the
        process-pool pickle boundary; live ``Metrics`` objects do not)
        and the parent session folds them in, so fleet-wide ``cache.*`` /
        ``solve.*`` counters read as if the work had run in-process.
        """
        for name, value in counters.items():
            if value:
                self.counter(name).inc(int(value))

    # -- export ---------------------------------------------------------

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        """Flat snapshot keyed by instrument kind, for summaries/tests."""
        return {
            "counters": {k: c.value for k, c in sorted(self.counters.items())},
            "gauges": {k: {"value": g.value, "max": g.max} for k, g in sorted(self.gauges.items())},
            "histograms": {
                k: {"count": h.count, "total": h.total, "min": h.min, "max": h.max, "mean": h.mean}
                for k, h in sorted(self.histograms.items())
            },
        }


class _NullCounter(Counter):
    def inc(self, n: int = 1) -> None:
        return None


class _NullGauge(Gauge):
    def set(self, value: float) -> None:
        return None


class _NullHistogram(Histogram):
    def observe(self, value: float) -> None:
        return None


_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_HISTOGRAM = _NullHistogram()


class NullMetrics(Metrics):
    """Disabled registry: mutators no-op, accessors hand out shared inert
    instruments, nothing is ever recorded."""

    enabled = False

    def counter(self, name: str) -> Counter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> Gauge:
        return _NULL_GAUGE

    def histogram(self, name: str) -> Histogram:
        return _NULL_HISTOGRAM

    def inc(self, name: str, n: int = 1) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def merge_counters(self, counters: Dict[str, int]) -> None:
        return None


NULL_METRICS = NullMetrics()

_current: Metrics = NULL_METRICS


def get_metrics() -> Metrics:
    """The registry instrumented code should report to (never ``None``)."""
    return _current


def set_metrics(metrics: Optional[Metrics]) -> Metrics:
    """Install ``metrics`` as process-current (``None`` restores the no-op);
    returns the previously installed registry."""
    global _current
    previous = _current
    _current = metrics if metrics is not None else NULL_METRICS
    return previous
