"""Sinks: turn a tracer/metrics session into something consumable.

Three consumers, one record schema (``repro-obs/1``):

``records(tracer, metrics)``
    The canonical flat form — a list of JSON-serialisable dicts.  First a
    ``meta`` record, then one ``span`` record per completed span
    (pre-order, with ``path`` and ``depth`` giving the tree back), then
    one record per metric instrument.

``write_jsonl`` / ``read_jsonl``
    One record per line.  This is the schema the ``BENCH_*.json``
    trajectory files use, so benchmark baselines and ``--profile`` output
    are directly comparable.

``render_tree``
    Human-readable phase-time tree for terminal output (the ``stats``
    CLI command and ``--trace``).

``InMemorySink``
    Test helper: captures records for assertions without touching disk.

Span record fields: ``name`` (span name), ``path`` (slash-joined names
from the root), ``depth``, ``start``/``dur`` (seconds, start relative to
tracer creation), ``attrs``.  Open spans (no ``end`` yet) are skipped —
records describe finished work only.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from .metrics import Metrics
from .tracer import Span, Tracer

__all__ = [
    "SCHEMA",
    "records",
    "span_records",
    "metric_records",
    "write_jsonl",
    "read_jsonl",
    "render_tree",
    "InMemorySink",
]

SCHEMA = "repro-obs/1"

Record = Dict[str, object]


def span_records(tracer: Tracer) -> List[Record]:
    """Flatten the tracer's span forest into ``span`` records."""
    out: List[Record] = []

    def visit(span: Span, path: str, depth: int) -> None:
        span_path = f"{path}/{span.name}" if path else span.name
        if span.end is not None:
            out.append(
                {
                    "type": "span",
                    "name": span.name,
                    "path": span_path,
                    "depth": depth,
                    "start": round(span.start, 9),
                    "dur": round(span.end - span.start, 9),
                    "attrs": dict(span.attrs),
                }
            )
        for child in span.children:
            visit(child, span_path, depth + 1)

    for root in tracer.roots:
        visit(root, "", 0)
    return out


def metric_records(metrics: Metrics) -> List[Record]:
    out: List[Record] = []
    for name, c in sorted(metrics.counters.items()):
        out.append({"type": "counter", "name": name, "value": c.value})
    for name, g in sorted(metrics.gauges.items()):
        out.append({"type": "gauge", "name": name, "value": g.value, "max": g.max})
    for name, h in sorted(metrics.histograms.items()):
        out.append(
            {
                "type": "histogram",
                "name": name,
                "count": h.count,
                "total": h.total,
                "min": h.min,
                "max": h.max,
                "p50": h.percentile(50),
                "p90": h.percentile(90),
                "p99": h.percentile(99),
                # Bounded reservoir (sorted): lets aggregators re-derive
                # percentiles over *merged* runs, which summary stats can't.
                "samples": h.samples(),
            }
        )
    return out


def records(
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    meta: Optional[Dict[str, object]] = None,
) -> List[Record]:
    """Full session export: meta record, spans, then metrics."""
    head: Record = {"type": "meta", "schema": SCHEMA}
    if meta:
        head.update(meta)
    out: List[Record] = [head]
    if tracer is not None:
        out.extend(span_records(tracer))
    if metrics is not None:
        out.extend(metric_records(metrics))
    return out


def write_jsonl(
    path: Union[str, Path],
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    meta: Optional[Dict[str, object]] = None,
) -> int:
    """Write one record per line; returns the number of records written."""
    recs = records(tracer, metrics, meta)
    text = "\n".join(json.dumps(r, sort_keys=True) for r in recs)
    Path(path).write_text(text + "\n")
    return len(recs)


def read_jsonl(path: Union[str, Path]) -> List[Record]:
    """Parse a JSONL export (blank lines tolerated)."""
    out: List[Record] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(json.loads(line))
    return out


def _fmt_attrs(attrs: Dict[str, object]) -> str:
    if not attrs:
        return ""
    body = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
    return f"  [{body}]"


def render_tree(
    tracer: Tracer,
    metrics: Optional[Metrics] = None,
    max_children: int = 12,
) -> str:
    """Indented phase-time tree, durations in ms, attrs inline.

    Sibling runs longer than ``max_children`` (e.g. hundreds of solver
    passes) are elided around the head/tail so the tree stays readable;
    the elision line says how many spans (and how much time) it hides.
    """
    lines: List[str] = ["phase-time tree (ms):"]

    def emit(span: Span, depth: int) -> None:
        dur = "   ...  " if span.end is None else f"{span.duration * 1e3:8.3f}"
        lines.append(f"  {dur}  {'  ' * depth}{span.name}{_fmt_attrs(span.attrs)}")
        children = span.children
        if len(children) > max_children:
            head, tail = max_children - 2, 2
            hidden = children[head:-tail]
            hidden_ms = sum((c.duration or 0.0) for c in hidden) * 1e3
            for child in children[:head]:
                emit(child, depth + 1)
            lines.append(
                f"  {'':8}  {'  ' * (depth + 1)}... {len(hidden)} more spans "
                f"({hidden_ms:.3f} ms) ..."
            )
            for child in children[-tail:]:
                emit(child, depth + 1)
        else:
            for child in children:
                emit(child, depth + 1)

    for root in tracer.roots:
        emit(root, 0)
    if metrics is not None and metrics.enabled:
        snap = metrics.as_dict()
        if snap["counters"]:
            lines.append("")
            lines.append("counters:")
            for name, value in snap["counters"].items():
                lines.append(f"  {value:>12}  {name}")
        if snap["gauges"]:
            lines.append("")
            lines.append("gauges (value / max):")
            for name, g in snap["gauges"].items():
                lines.append(f"  {g['value']:>12g} / {g['max']:g}  {name}")
        if snap["histograms"]:
            lines.append("")
            lines.append("histograms (count / mean / p50 / p90 / p99 / max):")
            for name, h in snap["histograms"].items():
                mean = h["total"] / h["count"] if h["count"] else 0.0
                lines.append(
                    f"  {h['count']:>8} / {mean:.2f} / {h['p50']} / {h['p90']}"
                    f" / {h['p99']} / {h['max']}  {name}"
                )
    return "\n".join(lines) + "\n"


class InMemorySink:
    """Collects session records in memory (tests, notebooks)."""

    def __init__(self) -> None:
        self.items: List[Record] = []

    def collect(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[Metrics] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> List[Record]:
        recs = records(tracer, metrics, meta)
        self.items.extend(recs)
        return recs

    def spans(self) -> List[Record]:
        return [r for r in self.items if r.get("type") == "span"]

    def counters(self) -> Dict[str, object]:
        return {r["name"]: r["value"] for r in self.items if r.get("type") == "counter"}
