"""repro.obs — tracing, metrics and profiling for the analysis pipeline.

The pipeline (parse → PFG build → fixpoint solve → client analyses →
interpreter) is instrumented at every layer, but **observability is off by
default**: instrumented code reports to no-op singletons
(:data:`~repro.obs.tracer.NULL_TRACER`, :data:`~repro.obs.metrics.NULL_METRICS`)
whose calls do nothing, so golden tests and benchmarks see near-zero
overhead.  To observe a region, install a session::

    from repro import obs

    with obs.session() as sess:
        report = optimize(source)
    print(obs.render_tree(sess.tracer, sess.metrics))   # phase-time tree
    obs.write_jsonl("profile.jsonl", sess.tracer, sess.metrics)

On the command line the same session backs ``python -m repro report FILE
--trace`` / ``--profile out.jsonl`` and ``python -m repro stats FILE``.

``session(count_bitset_ops=True)`` additionally makes
:func:`repro.dataflow.bitset.make_backend` wrap backends in a counting
proxy that records set-operation and word-operation totals — accurate but
not free, hence opt-in separately from spans.

See ``docs/observability.md`` for the span taxonomy and the JSONL schema.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

from .metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
    NullMetrics,
    get_metrics,
    set_metrics,
)
from .report import (
    REPORT_SCHEMA,
    ReportError,
    aggregate,
    compare_to_baseline,
    read_baseline,
    render_report,
    write_baseline,
)
from .sinks import (
    SCHEMA,
    InMemorySink,
    metric_records,
    read_jsonl,
    records,
    render_tree,
    span_records,
    write_jsonl,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer, get_tracer, set_tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "Metrics",
    "NULL_METRICS",
    "NULL_TRACER",
    "NullMetrics",
    "NullTracer",
    "ObsSession",
    "REPORT_SCHEMA",
    "ReportError",
    "SCHEMA",
    "Span",
    "Tracer",
    "aggregate",
    "bitset_counting_enabled",
    "compare_to_baseline",
    "get_metrics",
    "get_tracer",
    "metric_records",
    "read_baseline",
    "read_jsonl",
    "records",
    "render_report",
    "render_tree",
    "session",
    "write_baseline",
    "set_metrics",
    "set_tracer",
    "span_records",
    "write_jsonl",
]

#: When True, ``make_backend`` wraps backends in a counting proxy.  Module
#: state rather than a Metrics feature so the check in the (hot) backend
#: constructor is a plain global read.
_count_bitset_ops: bool = False


def bitset_counting_enabled() -> bool:
    return _count_bitset_ops


class ObsSession:
    """The pair of live collectors installed by :func:`session`."""

    def __init__(self, tracer: Tracer, metrics: Metrics):
        self.tracer = tracer
        self.metrics = metrics

    def records(self, **meta: object):
        return records(self.tracer, self.metrics, meta or None)

    def render(self) -> str:
        return render_tree(self.tracer, self.metrics)

    def write_jsonl(self, path, **meta: object) -> int:
        return write_jsonl(path, self.tracer, self.metrics, meta or None)


@contextmanager
def session(
    tracer: Optional[Tracer] = None,
    metrics: Optional[Metrics] = None,
    count_bitset_ops: bool = False,
) -> Iterator[ObsSession]:
    """Install live collectors process-wide for the duration of the block.

    Nested sessions stack: the inner session's collectors win while it is
    active, and the outer ones are restored on exit.
    """
    global _count_bitset_ops
    tracer = tracer if tracer is not None else Tracer()
    metrics = metrics if metrics is not None else Metrics()
    prev_tracer = set_tracer(tracer)
    prev_metrics = set_metrics(metrics)
    prev_count = _count_bitset_ops
    _count_bitset_ops = count_bitset_ops or prev_count
    try:
        yield ObsSession(tracer, metrics)
    finally:
        _count_bitset_ops = prev_count
        set_tracer(prev_tracer)
        set_metrics(prev_metrics)
