"""Wall-clock tracing: nested spans over the analysis pipeline.

A :class:`Span` is one timed region with a name, key/value attributes and
child spans; a :class:`Tracer` maintains the current span stack and the
list of completed root spans.  Usage::

    tracer = Tracer()
    with tracer.span("solve", order="rpo") as sp:
        ...
        sp.annotate(passes=stats.passes)

Instrumented library code never constructs a tracer itself — it asks for
the process-current one via :func:`get_tracer`, which defaults to
:data:`NULL_TRACER`, a no-op singleton whose ``span`` returns a shared,
allocation-free context manager.  That keeps the disabled-by-default cost
of an instrumentation point to one method call (no objects, no clock
reads), so golden tests and benchmarks are unaffected unless a session is
installed (see :func:`repro.obs.session`).

Span durations use ``time.perf_counter`` and are reported in seconds;
``start`` is an offset from the tracer's creation, so span records are
relative timelines, not timestamps.
"""

from __future__ import annotations

import time
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "get_tracer", "set_tracer"]


class Span:
    """One timed region.  ``end``/``duration`` are ``None`` while open."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: Optional[Dict[str, object]] = None):
        self.name = name
        self.attrs: Dict[str, object] = dict(attrs) if attrs else {}
        self.start: float = 0.0
        self.end: Optional[float] = None
        self.children: List["Span"] = []

    @property
    def duration(self) -> Optional[float]:
        return None if self.end is None else self.end - self.start

    def annotate(self, **attrs: object) -> None:
        """Attach attributes after the fact (e.g. stats known at exit)."""
        self.attrs.update(attrs)

    def walk(self, depth: int = 0) -> Iterator[Tuple["Span", int]]:
        """Yield ``(span, depth)`` pre-order over this span's subtree."""
        yield self, depth
        for child in self.children:
            yield from child.walk(depth + 1)

    def find(self, name: str) -> Optional["Span"]:
        """First span named ``name`` in this subtree (pre-order), if any."""
        for span, _ in self.walk():
            if span.name == name:
                return span
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        dur = "open" if self.end is None else f"{self.duration * 1e3:.3f}ms"
        return f"Span({self.name!r}, {dur}, {len(self.children)} children)"


class _SpanHandle:
    """Context manager binding one span to one tracer; re-usable pattern is
    one handle per ``span()`` call (spans can nest arbitrarily)."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self._span)
        return None


class Tracer:
    """Collects a forest of spans; ``enabled`` lets hot loops skip
    per-iteration instrumentation with a single attribute check."""

    enabled: bool = True

    def __init__(self) -> None:
        self._clock = time.perf_counter
        self._epoch = self._clock()
        self.roots: List[Span] = []
        self._stack: List[Span] = []

    # -- span lifecycle -------------------------------------------------

    def span(self, name: str, **attrs: object) -> _SpanHandle:
        return _SpanHandle(self, Span(name, attrs))

    def _push(self, span: Span) -> None:
        span.start = self._clock() - self._epoch
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        span.end = self._clock() - self._epoch
        # Tolerate mispaired exits rather than corrupt the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            while self._stack and self._stack.pop() is not span:
                pass

    # -- introspection --------------------------------------------------

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def annotate(self, **attrs: object) -> None:
        """Attach attributes to the innermost open span (no-op at top level)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def walk(self) -> Iterator[Tuple[Span, int]]:
        for root in self.roots:
            yield from root.walk()

    def find(self, name: str) -> Optional[Span]:
        for root in self.roots:
            hit = root.find(name)
            if hit is not None:
                return hit
        return None


class _NullSpan(Span):
    """Shared inert span: accepts ``annotate`` and stays empty."""

    def __init__(self) -> None:
        super().__init__("null")

    def annotate(self, **attrs: object) -> None:
        return None


class _NullHandle:
    __slots__ = ()
    _span = None  # set after _NULL_SPAN exists

    def __enter__(self) -> Span:
        return _NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_HANDLE = _NullHandle()


class NullTracer(Tracer):
    """Disabled tracer: every call is a no-op returning shared singletons."""

    enabled = False

    def __init__(self) -> None:
        self.roots = []
        self._stack = []

    def span(self, name: str, **attrs: object) -> _NullHandle:  # type: ignore[override]
        return _NULL_HANDLE

    def annotate(self, **attrs: object) -> None:
        return None


#: Process-wide default: tracing off.
NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The tracer instrumented code should report to (never ``None``)."""
    return _current


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` as process-current (``None`` restores the no-op);
    returns the previously installed tracer so callers can restore it."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous
