"""End-to-end soundness self-check: static sets vs. dynamic executions.

The reproduction's core safety property is that the static ``In`` sets
over-approximate *every* execution — every definition a run actually
observes reaching a use must be in that use's static ud-chain
(:func:`repro.interp.trace.check_soundness`).  This module turns that
property into an operational gate:

* :func:`verify_result` replays a program under a spread of seeded
  random schedules and collects every observation the given (possibly
  degraded, possibly tampered) result fails to explain;
* :func:`self_check` is the full oracle behind ``repro check FILE``:
  analyze through the degradation ladder
  (:func:`repro.robust.analyze_with_degradation`), then
  :func:`verify_result` — returning a :class:`SelfCheckReport` that also
  surfaces deadlocked schedules and any degradation provenance.

A passing self-check is evidence, not proof (it quantifies over the
schedules actually run) — but the chaos tests show it is a *sharp*
instrument: results corrupted by :func:`repro.robust.chaos.corrupt_result`
or by persistent update suppression are flagged deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..interp.interp import run_program
from ..interp.scheduler import RandomScheduler
from ..interp.trace import SoundnessViolation, check_soundness
from ..lang import ast
from ..obs import get_metrics, get_tracer
from ..reachdefs.result import ReachingDefsResult
from .degrade import DegradationRecord, analyze_with_degradation


@dataclass
class SelfCheckReport:
    """Outcome of one :func:`self_check` oracle run."""

    runs: int
    violations: List[Tuple[int, SoundnessViolation]] = field(default_factory=list)
    """(seed, violation) pairs — which schedule escaped the static sets."""
    deadlocked_seeds: List[int] = field(default_factory=list)
    degradation: Optional[DegradationRecord] = None
    system: str = ""

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        lines = []
        verdict = "PASS" if self.ok else "FAIL"
        suffix = f" [{self.degradation.format()}]" if self.degradation else ""
        lines.append(
            f"self-check {verdict}: {self.runs} runs against the {self.system} "
            f"system, {len(self.violations)} violation(s){suffix}"
        )
        for seed, v in self.violations:
            lines.append(f"  seed {seed}: {v.format()}")
        if self.deadlocked_seeds:
            seeds = ", ".join(str(s) for s in self.deadlocked_seeds)
            lines.append(f"  note: deadlocked under seed(s) {seeds}")
        return "\n".join(lines)


def verify_result(
    result: ReachingDefsResult,
    program: ast.Program,
    seeds: Sequence[int],
    max_loop_iters: int = 2,
) -> Tuple[List[Tuple[int, SoundnessViolation]], List[int]]:
    """Replay ``program`` under one seeded random schedule per seed and
    check every run against ``result``'s static sets.

    Returns ``(violations, deadlocked_seeds)``.  Runs are executed on
    ``result.graph`` so dynamic observations and static sets share one
    coordinate system.  Deadlocked runs still contribute the observations
    they made before blocking.
    """
    violations: List[Tuple[int, SoundnessViolation]] = []
    deadlocked: List[int] = []
    for seed in seeds:
        sched = RandomScheduler(seed=seed, max_loop_iters=max_loop_iters)
        run = run_program(program, scheduler=sched, graph=result.graph)
        if run.deadlocked:
            deadlocked.append(seed)
        for v in check_soundness(result, run):
            violations.append((seed, v))
    return violations, deadlocked


def self_check(
    program: ast.Program,
    runs: int = 5,
    max_loop_iters: int = 2,
    backend: str = "bitset",
    order: str = "document",
    solver: str = "stabilized",
    preserved: str = "approx",
    budget=None,
    seeds: Optional[Sequence[int]] = None,
) -> SelfCheckReport:
    """Analyze ``program`` (degradation ladder enabled) and verify the
    result dynamically; see module docstring."""
    tracer = get_tracer()
    metrics = get_metrics()
    if seeds is None:
        seeds = range(runs)
    seeds = list(seeds)
    with tracer.span("selfcheck", runs=str(len(seeds))):
        result, record = analyze_with_degradation(
            program,
            backend=backend,
            order=order,
            solver=solver,
            preserved=preserved,
            budget=budget,
        )
        violations, deadlocked = verify_result(
            result, program, seeds, max_loop_iters=max_loop_iters
        )
    report = SelfCheckReport(
        runs=len(seeds),
        violations=violations,
        deadlocked_seeds=deadlocked,
        degradation=record,
        system=result.system,
    )
    if metrics.enabled:
        metrics.inc("robust.selfcheck.runs", len(seeds))
        metrics.inc("robust.selfcheck.violations", len(violations))
        metrics.inc("robust.selfcheck.pass" if report.ok else "robust.selfcheck.fail")
    return report
