"""Graceful-degradation ladder: sound answers under failure.

The precise analysis can be unusable for two very different reasons:

* **it cannot be afforded** — an adversarial graph makes the fixpoint
  (or the Preserved approximation) exceed its
  :class:`~repro.dataflow.budget.ResourceBudget`;
* **it cannot be trusted** — the graph violates structural invariants
  (:func:`repro.pfg.validate_pfg`), or synchronization lint finds the
  §6 correctness assumption broken (stale events, deadlocking waits —
  exactly the paper's own Figure 3 caveat, where executions escape the
  static sets; see ``tests/regression/test_fig3_stale_event.py``).

Rather than crash or return something unsound, the ladder falls back
stepwise, each rung strictly more conservative and strictly cheaper:

====  ==============  =====================================================
rung  name            what is given up
====  ==============  =====================================================
0     ``full``        nothing — synch-aware §6 (or §5/§2 where applicable)
1     ``no-preserved`` the post→wait ordering information: the §6 system
                      runs with empty Preserved sets, so ``SynchPass`` is
                      empty and no synchronization kill is ever claimed —
                      the paper's own worst case, sound by construction
                      (synchronization edges still carry flow)
2     ``conservative`` all kill machinery: accumulate-only flow over every
                      edge kind (:mod:`repro.reachdefs.conservative`) —
                      cannot fail, cannot be unsound, has no precision
====  ==============  =====================================================

Every degraded result is stamped with a :class:`DegradationRecord`
(level, reason, budget spent per attempt) which the driver threads into
the :class:`~repro.driver.OptimizationReport` and the CLI and
observability sinks surface (``driver.degradations`` counter, ``degrade``
span).  Budgets are renewed per rung (``budget.fresh()``): a fallback
gets the same allowance the failed attempt had, and the record reports
the aggregate spend.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from ..analysis.synclint import SyncIssueKind, lint_synchronization
from ..dataflow.budget import NonConvergenceError, ResourceBudget
from ..lang import ast
from ..obs import get_metrics, get_tracer
from ..pfg import validate_pfg
from ..pfg.graph import ParallelFlowGraph
from ..pfg.validate import PFGInvariantError
from ..reachdefs import (
    ReachingDefsResult,
    solve_conservative,
    solve_parallel,
    solve_sequential,
    solve_synch,
)

#: Synchronization-lint kinds under which the §6 Preserved machinery is
#: no longer justified (its "every post executable before its wait"
#: assumption fails) — the ladder drops to ``no-preserved`` for these.
BLOCKING_SYNC_ISSUES = frozenset(
    {
        SyncIssueKind.WAIT_WITHOUT_POST,
        SyncIssueKind.WAIT_ONLY_ORDERED_AFTER,
        SyncIssueKind.STALE_EVENT,
    }
)


class DegradationLevel(enum.IntEnum):
    """Ladder rungs, in decreasing precision."""

    FULL = 0
    NO_PRESERVED = 1
    CONSERVATIVE = 2


_LEVEL_NAMES = {
    DegradationLevel.FULL: "full",
    DegradationLevel.NO_PRESERVED: "no-preserved",
    DegradationLevel.CONSERVATIVE: "conservative",
}


@dataclass
class DegradationRecord:
    """Provenance of a degraded analysis: which rung produced the result,
    why the higher rungs were abandoned, and what the attempts cost."""

    level: DegradationLevel
    reason: str
    budget_spent: Dict[str, object]

    @property
    def level_name(self) -> str:
        return _LEVEL_NAMES[self.level]

    def as_dict(self) -> Dict[str, object]:
        return {
            "level": int(self.level),
            "level_name": self.level_name,
            "reason": self.reason,
            "budget_spent": dict(self.budget_spent),
        }

    def format(self) -> str:
        msg = f"degraded to level {int(self.level)} ({self.level_name}): {self.reason}"
        spent = self.budget_spent
        if any(spent.values()):
            msg += (
                f" [{spent['seconds']}s, {spent['passes']} passes, "
                f"{spent['updates']} updates]"
            )
        return msg


def _aggregate_spend(budgets: List[ResourceBudget]) -> Dict[str, object]:
    total = {"seconds": 0.0, "passes": 0, "updates": 0}
    for b in budgets:
        spent = b.spent()
        total["seconds"] = round(total["seconds"] + float(spent["seconds"]), 6)
        total["passes"] += int(spent["passes"])
        total["updates"] += int(spent["updates"])
    return total


def analyze_with_degradation(
    source: Union[ast.Program, ParallelFlowGraph],
    backend: str = "bitset",
    order: str = "document",
    solver: str = "stabilized",
    preserved: str = "approx",
    budget: Optional[ResourceBudget] = None,
    dense=None,
) -> Tuple[ReachingDefsResult, Optional[DegradationRecord]]:
    """Analyze with the ladder above; always returns a sound result.

    Returns ``(result, record)`` where ``record`` is ``None`` when the
    full-precision analysis succeeded.  The ladder:

    1. ``validate_pfg`` fails → straight to ``conservative`` (the precise
       systems' assumptions about the graph shape don't hold);
    2. synchronization lint reports a blocking issue
       (:data:`BLOCKING_SYNC_ISSUES`) → start at ``no-preserved``;
    3. any rung exhausting its (renewed) budget → next rung.

    ``solver`` / ``dense`` select the fixpoint engine and dense-region
    configuration exactly as in :func:`repro.analyze`; every precise rung
    uses them (the terminal conservative rung is solver-independent).
    """
    from ..dataflow.cache import cached_build_pfg

    graph = source if isinstance(source, ParallelFlowGraph) else cached_build_pfg(source)
    tracer = get_tracer()
    metrics = get_metrics()
    uses_sync = bool(graph.posts_of_event or graph.waits_of_event)
    uses_parallel = bool(graph.forks) or bool(graph.pardos)
    reasons: List[str] = []
    spends: List[ResourceBudget] = []

    def record(level: DegradationLevel) -> DegradationRecord:
        rec = DegradationRecord(
            level=level,
            reason="; ".join(reasons) or "unspecified",
            budget_spent=_aggregate_spend(spends),
        )
        if metrics.enabled:
            metrics.inc("driver.degradations")
            metrics.inc(f"driver.degradations.level{int(level)}")
        return rec

    def attempt(level: DegradationLevel, fn, **kwargs) -> Optional[ReachingDefsResult]:
        rung_budget = budget.fresh() if budget is not None else None
        if rung_budget is not None:
            spends.append(rung_budget)
        try:
            with tracer.span("analyze-attempt", level=_LEVEL_NAMES[level]):
                result = fn(budget=rung_budget, **kwargs)
        except NonConvergenceError as err:
            reasons.append(f"{_LEVEL_NAMES[level]} analysis did not converge: {err.reason}")
            return None
        if not result.stats.converged:  # pragma: no cover - solvers raise instead
            reasons.append(f"{_LEVEL_NAMES[level]} analysis returned unconverged stats")
            return None
        return result

    try:
        validate_pfg(graph)
    except PFGInvariantError as err:
        first = err.violations[0]
        more = f" (+{len(err.violations) - 1} more)" if len(err.violations) > 1 else ""
        reasons.append(f"malformed graph: {first}{more}")
        with tracer.span("degrade", level="conservative"):
            result = solve_conservative(graph, backend=backend, order=order)
        return result, record(DegradationLevel.CONSERVATIVE)

    start = DegradationLevel.FULL
    if uses_sync and preserved == "approx":
        blocking = sorted(
            {i.kind.value for i in lint_synchronization(graph) if i.kind in BLOCKING_SYNC_ISSUES}
        )
        if blocking:
            reasons.append(
                "synchronization lint voids the Preserved assumption: " + ", ".join(blocking)
            )
            start = DegradationLevel.NO_PRESERVED

    if uses_sync:
        if start is DegradationLevel.FULL:
            result = attempt(
                DegradationLevel.FULL,
                solve_synch,
                graph=graph,
                backend=backend,
                order=order,
                solver=solver,
                preserved=preserved,
            )
            if result is not None:
                return result, None
        result = attempt(
            DegradationLevel.NO_PRESERVED,
            solve_synch,
            graph=graph,
            backend=backend,
            order=order,
            solver=solver,
            preserved="none",
            dense=dense,
        )
        if result is not None:
            degraded = record(DegradationLevel.NO_PRESERVED)
            return result, degraded
    elif uses_parallel:
        result = attempt(
            DegradationLevel.FULL,
            solve_parallel,
            graph=graph,
            backend=backend,
            order=order,
            solver=solver,
            dense=dense,
        )
        if result is not None:
            return result, None
    else:
        seq_solver = "round-robin" if solver == "stabilized" else solver
        result = attempt(
            DegradationLevel.FULL,
            solve_sequential,
            graph=graph,
            backend=backend,
            order=order,
            solver=seq_solver,
            dense=dense,
        )
        if result is not None:
            return result, None

    with tracer.span("degrade", level="conservative"):
        result = solve_conservative(graph, backend=backend, order=order)
    return result, record(DegradationLevel.CONSERVATIVE)
