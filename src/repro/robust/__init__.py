"""repro.robust — guarded execution, graceful degradation, fault injection.

The robustness subsystem wraps the analysis pipeline in three layers of
defense (see ``docs/robustness.md``):

* **budgets** — :class:`ResourceBudget` bounds any solve by wall clock,
  passes, and node updates; exhaustion (and the solvers' terminal caps)
  raises the typed :class:`NonConvergenceError` carrying iteration stats
  and a partial-state snapshot instead of silently returning garbage
  (re-exported here from :mod:`repro.dataflow.budget`, where they live to
  keep the solver layer import-cycle-free);
* **degradation** — :func:`analyze_with_degradation` falls back through
  strictly-more-conservative, strictly-cheaper analyses rather than
  failing, stamping a :class:`DegradationRecord` on the result's
  provenance;
* **verification** — :mod:`repro.robust.chaos` injects deterministic
  seeded faults (shuffled orders, dropped/duplicated solver updates,
  randomized interpreter schedules) and :func:`self_check` is the
  dynamic soundness oracle behind ``repro check FILE`` that catches the
  corruptions chaos can produce.
"""

from ..dataflow.budget import (
    BudgetExceeded,
    NonConvergenceError,
    ResourceBudget,
    check_budget,
)
from .chaos import (
    ChaosPlan,
    ChaosSystem,
    InjectedCorruption,
    chaos_schedulers,
    corrupt_result,
    shuffled_orders,
)
from .degrade import (
    BLOCKING_SYNC_ISSUES,
    DegradationLevel,
    DegradationRecord,
    analyze_with_degradation,
)
from .selfcheck import SelfCheckReport, self_check, verify_result

__all__ = [
    "BLOCKING_SYNC_ISSUES",
    "BudgetExceeded",
    "ChaosPlan",
    "ChaosSystem",
    "DegradationLevel",
    "DegradationRecord",
    "InjectedCorruption",
    "NonConvergenceError",
    "ResourceBudget",
    "SelfCheckReport",
    "analyze_with_degradation",
    "chaos_schedulers",
    "check_budget",
    "corrupt_result",
    "self_check",
    "shuffled_orders",
    "verify_result",
]
