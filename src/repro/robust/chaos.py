"""Fault injection for the analysis pipeline — deterministic, seeded.

Three perturbation families, all reproducible from a seed:

**Visit orders** (:func:`shuffled_orders`) — feed the solvers randomly
shuffled sweep orders.  The stabilized solver's contract is that the
fixpoint is visit-order independent; the chaos tests pin that across
many seeds rather than trusting the argument in
``solve_stabilized``'s docstring.

**Solver-update faults** (:class:`ChaosSystem`) — a transparent wrapper
around any :class:`~repro.dataflow.framework.EquationSystem` that

* *drops* a bounded number of updates (the update is skipped but
  reported as *changed*, so the solver schedules a retry — a lost
  update may delay convergence but can never fake it: premature
  convergence would require a sweep that reports no change);
* *duplicates* updates (runs them twice — monotone updates are
  idempotent at fixpoint, so this must not alter the result);
* *suppresses* named nodes **persistently** (their equations never
  run).  Unlike drops, suppression is a genuine corruption: the
  returned "fixpoint" under-approximates.  Its purpose is to prove the
  :mod:`repro.robust.selfcheck` oracle *detects* bad results — not by
  luck but on every schedule that exercises the suppressed flow.

**Interpreter schedules** (:func:`chaos_schedulers`) — a spread of
seeded random schedulers (varying seed and loop bounds) for adversarial
dynamic runs, e.g. driving the deadlock detector.

``corrupt_result`` injects corruption *after* a sound analysis: it
removes from a static ``In`` set a definition that a given run actually
observed, guaranteeing the self-check flags the tampered result.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Iterator, List, Sequence, Tuple

from ..interp.scheduler import RandomScheduler
from ..interp.trace import RunResult
from ..pfg.graph import ParallelFlowGraph
from ..pfg.node import PFGNode
from ..reachdefs.result import ReachingDefsResult
from ..dataflow.solver import make_order


def shuffled_orders(
    graph: ParallelFlowGraph, seeds: Sequence[int]
) -> Iterator[Tuple[int, List[PFGNode]]]:
    """One shuffled sweep order per seed (delegates to
    ``make_order("random:<seed>")`` so chaos and production shuffles
    share one implementation)."""
    for seed in seeds:
        yield seed, make_order(graph, f"random:{seed}")


def chaos_schedulers(
    seeds: Sequence[int], max_loop_iters: int = 2
) -> List[RandomScheduler]:
    """A spread of seeded random interpreter schedulers."""
    return [RandomScheduler(seed=s, max_loop_iters=max_loop_iters) for s in seeds]


@dataclass
class ChaosPlan:
    """Seeded fault-injection plan for one solver run.

    ``drop_rate``/``max_drops`` bound the transient faults: once
    ``max_drops`` updates have been dropped the wrapper behaves honestly,
    which is what keeps the final fixpoint exact (see module docstring).
    ``suppress`` names nodes whose updates never run — persistent,
    corrupting, detection-test fodder.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    max_drops: int = 25
    max_duplicates: int = 100
    suppress: frozenset = field(default_factory=frozenset)  # node names


class ChaosSystem:
    """Equation-system proxy injecting the faults of a :class:`ChaosPlan`.

    Wraps ``update`` / ``update_flow`` / ``update_kill``; everything else
    (initialization, snapshots, the stabilized-solver kill-state
    protocol) passes straight through, so any solver accepts the wrapped
    system wherever it accepted the original.
    """

    def __init__(self, system, plan: ChaosPlan):
        self._system = system
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.dropped = 0
        self.duplicated = 0
        self.suppressed_calls = 0

    def __getattr__(self, name):
        return getattr(self._system, name)

    # -- fault core ---------------------------------------------------------

    def _perturbed(self, update, node) -> bool:
        plan = self.plan
        if getattr(node, "name", None) in plan.suppress:
            self.suppressed_calls += 1
            return False
        if (
            plan.drop_rate > 0.0
            and self.dropped < plan.max_drops
            and self._rng.random() < plan.drop_rate
        ):
            self.dropped += 1
            # Claim a change: the solver re-sweeps, the skipped work is
            # retried — a drop can delay the fixpoint, never corrupt it.
            return True
        changed = update(node)
        if (
            plan.duplicate_rate > 0.0
            and self.duplicated < plan.max_duplicates
            and self._rng.random() < plan.duplicate_rate
        ):
            self.duplicated += 1
            changed = update(node) or changed
        return changed

    # -- wrapped update surface --------------------------------------------

    def update(self, node) -> bool:
        return self._perturbed(self._system.update, node)

    def update_flow(self, node) -> bool:
        return self._perturbed(self._system.update_flow, node)

    def update_kill(self, node) -> bool:
        return self._perturbed(self._system.update_kill, node)


@dataclass(frozen=True)
class InjectedCorruption:
    """What :func:`corrupt_result` removed, for test assertions."""

    node: str
    definition: str
    use: str

    def format(self) -> str:
        return (
            f"removed {self.definition} from In({self.node}) "
            f"(observed by use {self.use})"
        )


def corrupt_result(
    result: ReachingDefsResult,
    run: RunResult,
    seed: int = 0,
) -> Tuple[ReachingDefsResult, InjectedCorruption]:
    """Return a copy of ``result`` with one observed definition removed
    from the ``In`` set that explains it — a guaranteed-detectable
    corruption.

    The candidate (use, definition) pairs are the run's observations
    whose static explanation flows through the block's ``In`` set (no
    earlier same-block definition shadows it), so removing the
    definition *must* turn that observation into a soundness violation.
    Raises ``ValueError`` when the run observed nothing eligible.
    """
    candidates = []
    for obs in run.uses:
        if obs.definition is None:
            continue
        node = result.graph.node(obs.use.site)
        if node.local_def_before(obs.use.var, obs.use.ordinal) is not None:
            continue
        if obs.definition in result.in_sets[node]:
            candidates.append((node, obs))
    if not candidates:
        raise ValueError(
            "run observed no In-set-explained definition to corrupt; "
            "use a program whose uses read cross-block values"
        )
    node, obs = random.Random(seed).choice(candidates)
    tampered_in = dict(result.in_sets)
    tampered_in[node] = frozenset(d for d in tampered_in[node] if d != obs.definition)
    tampered = replace(result, in_sets=tampered_in)
    return tampered, InjectedCorruption(
        node=node.name, definition=obs.definition.name, use=obs.use.name
    )
