"""Sequential Control Flow Graph construction (paper §2, Figure 2).

A CFG is the degenerate Parallel Flow Graph of a program with no parallel
constructs: same node type, only ``SEQ`` edges.  Reusing the PFG builder
keeps block formation (and therefore definition naming) identical between
the sequential baseline and the parallel analyses, which is what makes the
side-by-side comparisons in the paper's Figures 1 and 5 meaningful.
"""

from __future__ import annotations

from ..lang import ast
from ..lang.errors import SemanticError
from ..pfg.builder import build_pfg
from ..pfg.graph import ParallelFlowGraph

#: Alias: a CFG *is* a ParallelFlowGraph whose edges are all sequential.
ControlFlowGraph = ParallelFlowGraph


def is_sequential(program: ast.Program) -> bool:
    """True iff the program uses no parallel or synchronization constructs."""
    for stmt in program.walk():
        if isinstance(stmt, (ast.ParallelSections, ast.ParallelDo, ast.Post, ast.Wait, ast.Clear)):
            return False
    return True


def build_cfg(program: ast.Program) -> ControlFlowGraph:
    """Build the CFG of a *sequential* program.

    Raises :class:`~repro.lang.errors.SemanticError` if the program contains
    ``parallel sections`` or event synchronization — use
    :func:`repro.pfg.build_pfg` for those.
    """
    for stmt in program.walk():
        if isinstance(stmt, (ast.ParallelSections, ast.ParallelDo)):
            raise SemanticError("sequential CFG requested for a parallel program", stmt.span)
        if isinstance(stmt, (ast.Post, ast.Wait, ast.Clear)):
            raise SemanticError(
                "sequential CFG requested for a program with event synchronization", stmt.span
            )
    return build_pfg(program)
