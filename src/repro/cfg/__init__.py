"""Sequential control-flow graphs — the paper's §2 baseline substrate."""

from .builder import ControlFlowGraph, build_cfg, is_sequential

__all__ = ["ControlFlowGraph", "build_cfg", "is_sequential"]
