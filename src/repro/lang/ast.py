"""Abstract syntax tree for the mini-PCF language.

The tree mirrors the constructs the paper's analysis consumes:

* straight-line scalar assignments,
* sequential branches (``if .. then .. else .. endif``),
* sequential loops (``loop .. endloop`` — a nondeterministically repeated
  loop, matching the paper's Figure 1/3 examples — and ``while``),
* the ``Parallel Sections`` construct with named sections, arbitrarily
  nested,
* event synchronization: ``post(ev)``, ``wait(ev)``, ``clear(ev)``.

Every node carries a :class:`~repro.lang.errors.SourceSpan`; statements
additionally carry an optional ``label`` used to give PFG nodes the same
numbering as the paper's figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from .errors import NO_SPAN, SourceSpan

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Expr:
    """Base class for expressions (immutable, hashable)."""

    def variables(self) -> Tuple[str, ...]:
        """All variable names read by this expression, in source order."""
        out: List[str] = []
        self._collect_vars(out)
        # preserve order, drop duplicates
        seen = set()
        uniq = []
        for v in out:
            if v not in seen:
                seen.add(v)
                uniq.append(v)
        return tuple(uniq)

    def _collect_vars(self, out: List[str]) -> None:
        raise NotImplementedError


@dataclass(frozen=True)
class IntLit(Expr):
    value: int

    def _collect_vars(self, out: List[str]) -> None:
        pass

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool

    def _collect_vars(self, out: List[str]) -> None:
        pass

    def __str__(self) -> str:
        return "true" if self.value else "false"


@dataclass(frozen=True)
class Var(Expr):
    name: str

    def _collect_vars(self, out: List[str]) -> None:
        out.append(self.name)

    def __str__(self) -> str:
        return self.name


#: Binary operators, by surface syntax.
BINARY_OPS = ("+", "-", "*", "/", "%", "==", "/=", "<", "<=", ">", ">=", "and", "or")
UNARY_OPS = ("-", "not")


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in BINARY_OPS:
            raise ValueError(f"unknown binary operator {self.op!r}")

    def _collect_vars(self, out: List[str]) -> None:
        self.left._collect_vars(out)
        self.right._collect_vars(out)

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in UNARY_OPS:
            raise ValueError(f"unknown unary operator {self.op!r}")

    def _collect_vars(self, out: List[str]) -> None:
        self.operand._collect_vars(out)

    def __str__(self) -> str:
        return f"({self.op} {self.operand})" if self.op == "not" else f"(-{self.operand})"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(eq=False)
class Stmt:
    """Base class for statements.

    ``label`` is an optional user-facing name for the statement; the paper
    labels statements with the basic-block numbers of its figures (so a
    definition of ``x`` at label ``4`` prints as ``x4``).  The PFG builder
    honours labels when forming extended basic blocks.
    """

    span: SourceSpan = field(default=NO_SPAN, kw_only=True)
    label: Optional[str] = field(default=None, kw_only=True)

    def children(self) -> Iterator["Stmt"]:
        """Immediate sub-statements (for generic walkers)."""
        return iter(())

    def walk(self) -> Iterator["Stmt"]:
        """This statement and all statements below it, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()


@dataclass(eq=False)
class Assign(Stmt):
    target: str
    expr: Expr

    def __str__(self) -> str:
        return f"{self.target} = {self.expr}"


@dataclass(eq=False)
class Skip(Stmt):
    """No-op statement; useful for labelling otherwise-empty blocks."""

    def __str__(self) -> str:
        return "skip"


@dataclass(eq=False)
class If(Stmt):
    cond: Expr
    then_body: List[Stmt]
    else_body: List[Stmt] = field(default_factory=list)
    end_label: Optional[str] = field(default=None, kw_only=True)
    """Label on the ``endif`` line; names the merge block (paper: ``(6) endif``)."""

    def children(self) -> Iterator[Stmt]:
        yield from self.then_body
        yield from self.else_body


@dataclass(eq=False)
class While(Stmt):
    cond: Expr
    body: List[Stmt]
    end_label: Optional[str] = field(default=None, kw_only=True)
    """Label on the ``endwhile`` line; names the latch block."""

    def children(self) -> Iterator[Stmt]:
        yield from self.body


@dataclass(eq=False)
class Loop(Stmt):
    """``loop .. endloop``: a sequential loop repeated a nondeterministic
    number of times (at least once per the paper's examples, but the
    analysis treats the trip count as unknown: the loop may also exit
    after any iteration)."""

    body: List[Stmt]
    end_label: Optional[str] = field(default=None, kw_only=True)
    """Label on the ``endloop`` line; names the latch block (paper: ``(7) endloop``)."""

    def children(self) -> Iterator[Stmt]:
        yield from self.body


@dataclass(eq=False)
class Section(Stmt):
    """One parallel section (a thread) of a ``Parallel Sections`` construct."""

    name: str
    body: List[Stmt]

    def children(self) -> Iterator[Stmt]:
        yield from self.body


@dataclass(eq=False)
class ParallelSections(Stmt):
    """The PCF ``Parallel Sections`` construct: every section executes,
    conceptually in parallel, and the construct completes when all do."""

    sections: List[Section]
    end_label: Optional[str] = field(default=None, kw_only=True)
    """Label on the ``end parallel sections`` line; names the join block
    (paper: ``(11) End Parallel Sections``)."""

    def children(self) -> Iterator[Stmt]:
        yield from self.sections


@dataclass(eq=False)
class ParallelDo(Stmt):
    """The PCF ``Parallel Do`` construct (the paper's §7 future work).

    ``parallel do i … end parallel do``: the body executes once per
    iteration, iterations conceptually in parallel, each with its own
    copy of the shared variables (copy-in/copy-out) and a private,
    read-only index ``i``.  The trip count is not modelled (it may be
    zero), mirroring how ``loop`` leaves its count open.
    """

    index: str
    body: List[Stmt]
    end_label: Optional[str] = field(default=None, kw_only=True)
    """Label on the ``end parallel do`` line; names the merge block."""

    def children(self) -> Iterator[Stmt]:
        yield from self.body


@dataclass(eq=False)
class Post(Stmt):
    """Mark ``event`` as posted (and, under copy-in/copy-out semantics,
    make this thread's shared-variable copies visible to waiters)."""

    event: str

    def __str__(self) -> str:
        return f"post({self.event})"


@dataclass(eq=False)
class Wait(Stmt):
    """Block until ``event`` is posted; absorb posters' variable copies."""

    event: str

    def __str__(self) -> str:
        return f"wait({self.event})"


@dataclass(eq=False)
class Clear(Stmt):
    """Reset ``event`` to un-posted."""

    event: str

    def __str__(self) -> str:
        return f"clear({self.event})"


def structurally_equal(a: object, b: object) -> bool:
    """Structural AST equality, ignoring source spans.

    Statements compare by identity under ``==`` (so they can live in hash
    maps and ``list.index`` is positional); tests that need tree equality —
    parser/pretty-printer round-trips, generator determinism — use this.
    """
    if isinstance(a, Expr) or isinstance(b, Expr):
        return a == b  # expressions are frozen dataclasses: structural
    if isinstance(a, (Stmt, Program)) != isinstance(b, (Stmt, Program)):
        return False
    if isinstance(a, (Stmt, Program)):
        if type(a) is not type(b):
            return False
        for name in a.__dataclass_fields__:  # type: ignore[union-attr]
            if name == "span":
                continue
            va, vb = getattr(a, name), getattr(b, name)
            if isinstance(va, list):
                if not isinstance(vb, list) or len(va) != len(vb):
                    return False
                if not all(structurally_equal(x, y) for x, y in zip(va, vb)):
                    return False
            elif not structurally_equal(va, vb):
                return False
        return True
    return a == b


@dataclass(eq=False)
class Program:
    """A complete compilation unit."""

    name: str
    events: List[str]
    body: List[Stmt]
    span: SourceSpan = NO_SPAN

    def walk(self) -> Iterator[Stmt]:
        for stmt in self.body:
            yield from stmt.walk()

    def assigned_variables(self) -> Tuple[str, ...]:
        """All variables assigned anywhere in the program, in order."""
        seen = set()
        out: List[str] = []
        for stmt in self.walk():
            if isinstance(stmt, Assign) and stmt.target not in seen:
                seen.add(stmt.target)
                out.append(stmt.target)
        return tuple(out)

    def used_variables(self) -> Tuple[str, ...]:
        """All variables read anywhere in the program, in order."""
        seen = set()
        out: List[str] = []
        for stmt in self.walk():
            exprs: List[Expr] = []
            if isinstance(stmt, Assign):
                exprs.append(stmt.expr)
            elif isinstance(stmt, (If, While)):
                exprs.append(stmt.cond)
            for e in exprs:
                for v in e.variables():
                    if v not in seen:
                        seen.add(v)
                        out.append(v)
        return tuple(out)
