"""Token definitions for the mini-PCF language.

The language is a small, self-contained stand-in for the PCF FORTRAN
extensions the paper analyzes: it has the ``Parallel Sections`` construct,
event variables with ``post``/``wait``/``clear``, sequential ``if``/``loop``/
``while`` control flow, and integer/boolean scalar assignments.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceSpan


class TokenKind(enum.Enum):
    """Lexical categories produced by :class:`repro.lang.lexer.Lexer`."""

    # Literals / identifiers
    INT = "INT"
    IDENT = "IDENT"

    # Keywords
    PROGRAM = "program"
    END = "end"
    EVENT = "event"
    IF = "if"
    THEN = "then"
    ELSE = "else"
    ENDIF = "endif"
    LOOP = "loop"
    ENDLOOP = "endloop"
    WHILE = "while"
    DO = "do"
    ENDWHILE = "endwhile"
    PARALLEL = "parallel"
    SECTIONS = "sections"
    SECTION = "section"
    POST = "post"
    WAIT = "wait"
    CLEAR = "clear"
    SKIP = "skip"
    TRUE = "true"
    FALSE = "false"
    NOT = "not"
    AND = "and"
    OR = "or"

    # Punctuation / operators
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    LPAREN = "("
    RPAREN = ")"
    COMMA = ","
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    # Layout
    NEWLINE = "NEWLINE"
    EOF = "EOF"


#: Keyword spelling (lower-case) -> token kind.  The lexer lower-cases
#: candidate identifiers before looking them up, so keywords are
#: case-insensitive, as in FORTRAN.
KEYWORDS = {
    kind.value: kind
    for kind in (
        TokenKind.PROGRAM,
        TokenKind.END,
        TokenKind.EVENT,
        TokenKind.IF,
        TokenKind.THEN,
        TokenKind.ELSE,
        TokenKind.ENDIF,
        TokenKind.LOOP,
        TokenKind.ENDLOOP,
        TokenKind.WHILE,
        TokenKind.DO,
        TokenKind.ENDWHILE,
        TokenKind.PARALLEL,
        TokenKind.SECTIONS,
        TokenKind.SECTION,
        TokenKind.POST,
        TokenKind.WAIT,
        TokenKind.CLEAR,
        TokenKind.SKIP,
        TokenKind.TRUE,
        TokenKind.FALSE,
        TokenKind.NOT,
        TokenKind.AND,
        TokenKind.OR,
    )
}


@dataclass(frozen=True)
class Token:
    """A single lexeme with its source span.

    ``value`` holds the decoded payload: an ``int`` for ``INT`` tokens, the
    (case-preserved) spelling for ``IDENT`` tokens, and ``None`` otherwise.
    """

    kind: TokenKind
    text: str
    span: SourceSpan
    value: object = None

    def __repr__(self) -> str:  # compact, useful in parser error paths
        payload = f"={self.value!r}" if self.value is not None else ""
        return f"Token({self.kind.name}{payload} @ {self.span})"
