"""Source locations and diagnostics for the mini-PCF language.

Every token and AST node carries a :class:`SourceSpan` so that analysis
results (definitions, anomaly reports, optimization suggestions) can point
back at source text the way a compiler diagnostic would.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class SourcePos:
    """A single point in a source file (1-based line, 1-based column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class SourceSpan:
    """A half-open region of source text, ``[start, end)``."""

    start: SourcePos
    end: SourcePos

    @staticmethod
    def point(line: int, column: int) -> "SourceSpan":
        pos = SourcePos(line, column)
        return SourceSpan(pos, pos)

    def merge(self, other: "SourceSpan") -> "SourceSpan":
        """Smallest span covering both ``self`` and ``other``."""
        start = min(self.start, other.start)
        end = max(self.end, other.end)
        return SourceSpan(start, end)

    def __str__(self) -> str:
        return str(self.start)


#: Span used for synthesized nodes that have no source text.
NO_SPAN = SourceSpan.point(0, 0)


class LangError(Exception):
    """Base class for all front-end errors."""

    def __init__(self, message: str, span: SourceSpan = NO_SPAN):
        self.message = message
        self.span = span
        super().__init__(f"{span}: {message}" if span != NO_SPAN else message)


class LexError(LangError):
    """Raised on an unrecognized character or malformed literal."""


class ParseError(LangError):
    """Raised on a syntactically invalid program."""


class SemanticError(LangError):
    """Raised on well-formedness violations (e.g. wait on undeclared event)."""
