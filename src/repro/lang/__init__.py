"""Mini-PCF front end: lexer, parser, AST, pretty-printer.

The language is a self-contained equivalent of the PCF FORTRAN parallel
extensions the paper targets (Parallel Computing Forum / ANSI X3H5):
``Parallel Sections`` with named sections, binary event variables with
``post``/``wait``/``clear``, and ordinary sequential scalar code.
"""

from . import ast
from .errors import LangError, LexError, ParseError, SemanticError, SourcePos, SourceSpan
from .lexer import Lexer, tokenize
from .parser import parse_expression, parse_program
from .pretty import pretty
from .tokens import Token, TokenKind

__all__ = [
    "ast",
    "LangError",
    "LexError",
    "ParseError",
    "SemanticError",
    "SourcePos",
    "SourceSpan",
    "Lexer",
    "tokenize",
    "parse_expression",
    "parse_program",
    "pretty",
    "Token",
    "TokenKind",
]
