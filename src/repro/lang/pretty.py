"""Pretty-printer: AST back to parseable mini-PCF source.

The printer is the inverse of :func:`repro.lang.parser.parse_program` up to
whitespace and redundant parentheses; the property test
``tests/property/test_roundtrip.py`` checks ``parse(pretty(p)) == p``
structurally for generated programs.
"""

from __future__ import annotations

from typing import List

from . import ast

_INDENT = "  "


def _label_prefix(stmt: ast.Stmt) -> str:
    return f"({stmt.label}) " if stmt.label is not None else ""


def _end_prefix(label) -> str:
    return f"({label}) " if label is not None else ""


def format_expr(expr: ast.Expr) -> str:
    """Render an expression with minimal parentheses (fully parenthesized
    for nested binary operations; atoms bare)."""
    return str(expr)


class PrettyPrinter:
    def __init__(self) -> None:
        self.lines: List[str] = []
        self.depth = 0

    def _emit(self, text: str) -> None:
        self.lines.append(f"{_INDENT * self.depth}{text}")

    def program(self, prog: ast.Program) -> str:
        self._emit(f"program {prog.name}")
        self.depth += 1
        for event in prog.events:
            self._emit(f"event {event}")
        self.block(prog.body)
        self.depth -= 1
        self._emit("end program")
        return "\n".join(self.lines) + "\n"

    def block(self, stmts: List[ast.Stmt]) -> None:
        for stmt in stmts:
            self.stmt(stmt)

    def stmt(self, stmt: ast.Stmt) -> None:
        prefix = _label_prefix(stmt)
        if isinstance(stmt, ast.Assign):
            self._emit(f"{prefix}{stmt.target} = {format_expr(stmt.expr)}")
        elif isinstance(stmt, ast.Skip):
            self._emit(f"{prefix}skip")
        elif isinstance(stmt, ast.Post):
            self._emit(f"{prefix}post({stmt.event})")
        elif isinstance(stmt, ast.Wait):
            self._emit(f"{prefix}wait({stmt.event})")
        elif isinstance(stmt, ast.Clear):
            self._emit(f"{prefix}clear({stmt.event})")
        elif isinstance(stmt, ast.If):
            self._emit(f"{prefix}if {format_expr(stmt.cond)} then")
            self.depth += 1
            self.block(stmt.then_body)
            self.depth -= 1
            if stmt.else_body:
                self._emit("else")
                self.depth += 1
                self.block(stmt.else_body)
                self.depth -= 1
            self._emit(f"{_end_prefix(stmt.end_label)}endif")
        elif isinstance(stmt, ast.Loop):
            self._emit(f"{prefix}loop")
            self.depth += 1
            self.block(stmt.body)
            self.depth -= 1
            self._emit(f"{_end_prefix(stmt.end_label)}endloop")
        elif isinstance(stmt, ast.While):
            self._emit(f"{prefix}while {format_expr(stmt.cond)} do")
            self.depth += 1
            self.block(stmt.body)
            self.depth -= 1
            self._emit(f"{_end_prefix(stmt.end_label)}endwhile")
        elif isinstance(stmt, ast.ParallelDo):
            self._emit(f"{prefix}parallel do {stmt.index}")
            self.depth += 1
            self.block(stmt.body)
            self.depth -= 1
            self._emit(f"{_end_prefix(stmt.end_label)}end parallel do")
        elif isinstance(stmt, ast.ParallelSections):
            self._emit(f"{prefix}parallel sections")
            self.depth += 1
            for section in stmt.sections:
                self._emit(f"{_label_prefix(section)}section {section.name}")
                self.depth += 1
                self.block(section.body)
                self.depth -= 1
            self.depth -= 1
            self._emit(f"{_end_prefix(stmt.end_label)}end parallel sections")
        else:  # pragma: no cover - future node kinds
            raise TypeError(f"cannot pretty-print {type(stmt).__name__}")


def pretty(prog: ast.Program) -> str:
    """Render ``prog`` as parseable source text."""
    return PrettyPrinter().program(prog)
