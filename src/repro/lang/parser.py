"""Recursive-descent parser for the mini-PCF language.

Grammar (statements are newline/``;`` separated; ``# .. / ! ..`` comment)::

    program   := "program" IDENT NL decl* stmt* "end" ["program"] NL? EOF
    decl      := "event" IDENT ("," IDENT)* NL
    stmt      := label? core NL
    label     := "(" (INT | IDENT) ")"
    core      := IDENT "=" expr
               | "if" expr "then" NL stmt* ["else" NL stmt*] "endif"
               | "loop" NL stmt* "endloop"
               | "while" expr "do" NL stmt* "endwhile"
               | "parallel" "sections" NL section+ "end" "parallel" "sections"
               | ("post" | "wait" | "clear") "(" IDENT ")"
               | "skip"
    section   := label? "section" IDENT NL stmt*

Statement *labels* let the paper's numbered listings be typed verbatim —
``(4) x = 7`` gives the statement label ``"4"``, and the PFG builder names
blocks after the labels of the statements they contain, so analysis output
lines up with the paper's figures (definition ``x4`` etc.).

Expression precedence, loosest to tightest::

    or  <  and  <  not  <  (== /= < <= > >=)  <  (+ -)  <  (* / %)  <  unary -
"""

from __future__ import annotations

from typing import List, Optional

from . import ast
from .errors import ParseError, SourceSpan
from .lexer import tokenize
from .tokens import Token, TokenKind

_COMPARISONS = {
    TokenKind.EQ: "==",
    TokenKind.NE: "/=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}
_ADDITIVE = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
_MULTIPLICATIVE = {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"}

#: Tokens that terminate a statement list (checked before parsing a stmt).
_BLOCK_ENDERS = (
    TokenKind.END,
    TokenKind.ENDIF,
    TokenKind.ENDLOOP,
    TokenKind.ENDWHILE,
    TokenKind.ELSE,
    TokenKind.SECTION,
    TokenKind.EOF,
)


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing ---------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        idx = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[idx]

    def _at(self, *kinds: TokenKind) -> bool:
        return self._peek().kind in kinds

    def _advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind is not TokenKind.EOF:
            self.pos += 1
        return tok

    def _expect(self, kind: TokenKind, what: str = "") -> Token:
        tok = self._peek()
        if tok.kind is not kind:
            wanted = what or kind.value
            raise ParseError(f"expected {wanted}, found {tok.text!r}", tok.span)
        return self._advance()

    def _skip_newlines(self) -> None:
        while self._at(TokenKind.NEWLINE):
            self._advance()

    def _end_of_statement(self) -> None:
        if self._at(TokenKind.NEWLINE):
            self._advance()
            self._skip_newlines()
        elif not self._at(TokenKind.EOF):
            tok = self._peek()
            raise ParseError(f"expected end of statement, found {tok.text!r}", tok.span)

    # -- program ----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        self._skip_newlines()
        start = self._expect(TokenKind.PROGRAM).span
        name = self._expect(TokenKind.IDENT, "program name").text
        self._end_of_statement()

        events: List[str] = []
        while self._at(TokenKind.EVENT):
            self._advance()
            events.append(self._expect(TokenKind.IDENT, "event name").text)
            while self._at(TokenKind.COMMA):
                self._advance()
                events.append(self._expect(TokenKind.IDENT, "event name").text)
            self._end_of_statement()
        if len(set(events)) != len(events):
            dupes = sorted({e for e in events if events.count(e) > 1})
            raise ParseError(f"duplicate event declaration(s): {', '.join(dupes)}", start)

        body = self._parse_stmt_list()
        self._parse_end_label()  # a label on 'end program' is allowed, unused
        end_tok = self._expect(TokenKind.END, "'end' / 'end program'")
        if self._at(TokenKind.PROGRAM):
            self._advance()
        self._skip_newlines()
        self._expect(TokenKind.EOF, "end of file")
        span = start.merge(end_tok.span)
        return ast.Program(name=name, events=events, body=body, span=span)

    # -- statements -------------------------------------------------------

    def _at_block_end(self) -> bool:
        """True at a block-terminating keyword, possibly behind a label
        (the paper labels terminators: ``(6) endif``, ``(11) end parallel
        sections``)."""
        if self._at(*_BLOCK_ENDERS):
            return True
        if (
            self._at(TokenKind.LPAREN)
            and self._peek(1).kind in (TokenKind.INT, TokenKind.IDENT)
            and self._peek(2).kind is TokenKind.RPAREN
            and self._peek(3).kind in _BLOCK_ENDERS
        ):
            return True
        return False

    def _parse_end_label(self) -> Optional[str]:
        """Consume a label that precedes a block terminator, if present."""
        if self._at(TokenKind.LPAREN):
            return self._parse_label()
        return None

    def _parse_stmt_list(self) -> List[ast.Stmt]:
        stmts: List[ast.Stmt] = []
        self._skip_newlines()
        while not self._at_block_end():
            stmts.append(self._parse_stmt())
        return stmts

    def _parse_label(self) -> Optional[str]:
        """``( 4 )`` or ``( Entry )`` prefix.  Unambiguous: no statement
        begins with ``(`` otherwise."""
        if not self._at(TokenKind.LPAREN):
            return None
        self._advance()
        tok = self._peek()
        if tok.kind in (TokenKind.INT, TokenKind.IDENT):
            self._advance()
            label = tok.text
        else:
            raise ParseError("statement label must be a number or name", tok.span)
        self._expect(TokenKind.RPAREN)
        return label

    def _parse_stmt(self) -> ast.Stmt:
        label = self._parse_label()
        tok = self._peek()
        if tok.kind is TokenKind.IDENT:
            stmt: ast.Stmt = self._parse_assign()
        elif tok.kind is TokenKind.IF:
            stmt = self._parse_if()
        elif tok.kind is TokenKind.LOOP:
            stmt = self._parse_loop()
        elif tok.kind is TokenKind.WHILE:
            stmt = self._parse_while()
        elif tok.kind is TokenKind.PARALLEL:
            if self._peek(1).kind is TokenKind.DO:
                stmt = self._parse_parallel_do()
            else:
                stmt = self._parse_parallel_sections()
        elif tok.kind in (TokenKind.POST, TokenKind.WAIT, TokenKind.CLEAR):
            stmt = self._parse_sync()
        elif tok.kind is TokenKind.SKIP:
            self._advance()
            stmt = ast.Skip(span=tok.span)
            self._end_of_statement()
        else:
            raise ParseError(f"expected a statement, found {tok.text!r}", tok.span)
        stmt.label = label
        return stmt

    def _parse_assign(self) -> ast.Assign:
        target = self._expect(TokenKind.IDENT)
        self._expect(TokenKind.ASSIGN, "'='")
        expr = self._parse_expr()
        span = target.span
        self._end_of_statement()
        return ast.Assign(target=target.text, expr=expr, span=span)

    def _parse_if(self) -> ast.If:
        start = self._expect(TokenKind.IF).span
        cond = self._parse_expr()
        self._expect(TokenKind.THEN, "'then'")
        self._end_of_statement()
        then_body = self._parse_stmt_list()
        else_body: List[ast.Stmt] = []
        end_label = self._parse_end_label()
        if self._at(TokenKind.ELSE):
            self._advance()
            self._end_of_statement()
            else_body = self._parse_stmt_list()
            end_label = self._parse_end_label()
        end = self._expect(TokenKind.ENDIF, "'endif'").span
        self._end_of_statement()
        return ast.If(
            cond=cond,
            then_body=then_body,
            else_body=else_body,
            span=start.merge(end),
            end_label=end_label,
        )

    def _parse_loop(self) -> ast.Loop:
        start = self._expect(TokenKind.LOOP).span
        self._end_of_statement()
        body = self._parse_stmt_list()
        end_label = self._parse_end_label()
        end = self._expect(TokenKind.ENDLOOP, "'endloop'").span
        self._end_of_statement()
        return ast.Loop(body=body, span=start.merge(end), end_label=end_label)

    def _parse_while(self) -> ast.While:
        start = self._expect(TokenKind.WHILE).span
        cond = self._parse_expr()
        self._expect(TokenKind.DO, "'do'")
        self._end_of_statement()
        body = self._parse_stmt_list()
        end_label = self._parse_end_label()
        end = self._expect(TokenKind.ENDWHILE, "'endwhile'").span
        self._end_of_statement()
        return ast.While(cond=cond, body=body, span=start.merge(end), end_label=end_label)

    def _parse_parallel_sections(self) -> ast.ParallelSections:
        start = self._expect(TokenKind.PARALLEL).span
        self._expect(TokenKind.SECTIONS, "'sections'")
        self._end_of_statement()
        sections: List[ast.Section] = []
        while True:
            self._skip_newlines()
            label = None
            if (
                self._at(TokenKind.LPAREN)
                and self._peek(1).kind in (TokenKind.INT, TokenKind.IDENT)
                and self._peek(2).kind is TokenKind.RPAREN
                and self._peek(3).kind is TokenKind.SECTION
            ):
                label = self._parse_label()
            if not self._at(TokenKind.SECTION):
                break
            sec_tok = self._advance()
            name = self._expect(TokenKind.IDENT, "section name").text
            self._end_of_statement()
            body = self._parse_stmt_list()
            section = ast.Section(name=name, body=body, span=sec_tok.span)
            section.label = label
            sections.append(section)
        if not sections:
            raise ParseError("parallel sections must contain at least one section", start)
        names = [s.name for s in sections]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ParseError(f"duplicate section name(s): {', '.join(dupes)}", start)
        end_label = self._parse_end_label()
        end = self._expect(TokenKind.END, "'end parallel sections'").span
        self._expect(TokenKind.PARALLEL, "'parallel'")
        self._expect(TokenKind.SECTIONS, "'sections'")
        self._end_of_statement()
        return ast.ParallelSections(sections=sections, span=start.merge(end), end_label=end_label)

    def _parse_parallel_do(self) -> ast.ParallelDo:
        start = self._expect(TokenKind.PARALLEL).span
        self._expect(TokenKind.DO, "'do'")
        index = self._expect(TokenKind.IDENT, "parallel do index variable").text
        self._end_of_statement()
        body = self._parse_stmt_list()
        end_label = self._parse_end_label()
        end = self._expect(TokenKind.END, "'end parallel do'").span
        self._expect(TokenKind.PARALLEL, "'parallel'")
        self._expect(TokenKind.DO, "'do'")
        self._end_of_statement()
        for stmt in body:
            for inner in stmt.walk():
                if isinstance(inner, ast.Assign) and inner.target == index:
                    raise ParseError(
                        f"parallel do index {index!r} is read-only inside the construct",
                        inner.span,
                    )
        return ast.ParallelDo(index=index, body=body, span=start.merge(end), end_label=end_label)

    def _parse_sync(self) -> ast.Stmt:
        tok = self._advance()
        self._expect(TokenKind.LPAREN, "'('")
        event = self._expect(TokenKind.IDENT, "event name").text
        self._expect(TokenKind.RPAREN, "')'")
        self._end_of_statement()
        if tok.kind is TokenKind.POST:
            return ast.Post(event=event, span=tok.span)
        if tok.kind is TokenKind.WAIT:
            return ast.Wait(event=event, span=tok.span)
        return ast.Clear(event=event, span=tok.span)

    # -- expressions ------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            self._advance()
            left = ast.BinOp("or", left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_not()
        while self._at(TokenKind.AND):
            self._advance()
            left = ast.BinOp("and", left, self._parse_not())
        return left

    def _parse_not(self) -> ast.Expr:
        if self._at(TokenKind.NOT):
            self._advance()
            return ast.UnaryOp("not", self._parse_not())
        return self._parse_comparison()

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_additive()
        if self._peek().kind in _COMPARISONS:
            op = _COMPARISONS[self._advance().kind]
            return ast.BinOp(op, left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in _ADDITIVE:
            op = _ADDITIVE[self._advance().kind]
            left = ast.BinOp(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in _MULTIPLICATIVE:
            op = _MULTIPLICATIVE[self._advance().kind]
            left = ast.BinOp(op, left, self._parse_unary())
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._at(TokenKind.MINUS):
            self._advance()
            return ast.UnaryOp("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(tok.value)  # type: ignore[arg-type]
        if tok.kind is TokenKind.TRUE:
            self._advance()
            return ast.BoolLit(True)
        if tok.kind is TokenKind.FALSE:
            self._advance()
            return ast.BoolLit(False)
        if tok.kind is TokenKind.IDENT:
            self._advance()
            return ast.Var(tok.text)
        if tok.kind is TokenKind.LPAREN:
            self._advance()
            inner = self._parse_expr()
            self._expect(TokenKind.RPAREN, "')'")
            return inner
        raise ParseError(f"expected an expression, found {tok.text!r}", tok.span)


def parse_program(source: str) -> ast.Program:
    """Parse complete source text into a :class:`~repro.lang.ast.Program`.

    Traced as a ``parse`` span (source size, program name) when an
    observability session is installed — see :mod:`repro.obs`.
    """
    from ..obs import get_tracer

    tracer = get_tracer()
    with tracer.span("parse", chars=len(source)) as span:
        program = Parser(tokenize(source)).parse_program()
        span.annotate(program=program.name)
    return program


def parse_expression(source: str) -> ast.Expr:
    """Parse a standalone expression (used by tests and the CLI)."""
    tokens = tokenize(source)
    parser = Parser(tokens)
    expr = parser._parse_expr()
    parser._skip_newlines()
    parser._expect(TokenKind.EOF, "end of expression")
    return expr
