"""Hand-written lexer for the mini-PCF language.

Design notes
------------
* The language is line-oriented: statements are separated by newlines (or
  ``;``).  Consecutive newlines collapse into one ``NEWLINE`` token and a
  leading newline is never emitted, which keeps the parser simple.
* Comments run from ``#`` or ``!`` to end of line (``!`` for FORTRAN
  flavour).
* Keywords are case-insensitive; identifiers preserve case.
"""

from __future__ import annotations

from typing import Iterator, List

from .errors import LexError, SourcePos, SourceSpan
from .tokens import KEYWORDS, Token, TokenKind

_SINGLE_CHAR = {
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "%": TokenKind.PERCENT,
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    ",": TokenKind.COMMA,
}


class Lexer:
    """Converts source text into a token stream.

    Use :func:`tokenize` for the common case; the class form exists so
    incremental tooling can observe lexer state.
    """

    def __init__(self, source: str):
        self.source = source
        self.pos = 0
        self.line = 1
        self.column = 1

    # -- low-level cursor ------------------------------------------------

    def _peek(self, offset: int = 0) -> str:
        idx = self.pos + offset
        return self.source[idx] if idx < len(self.source) else ""

    def _advance(self) -> str:
        ch = self.source[self.pos]
        self.pos += 1
        if ch == "\n":
            self.line += 1
            self.column = 1
        else:
            self.column += 1
        return ch

    def _here(self) -> SourcePos:
        return SourcePos(self.line, self.column)

    # -- scanning --------------------------------------------------------

    def tokens(self) -> Iterator[Token]:
        """Yield tokens, ending with a single ``EOF`` token."""
        emitted_any = False
        last_was_newline = True  # suppress leading NEWLINEs
        while self.pos < len(self.source):
            ch = self._peek()
            if ch in " \t\r":
                self._advance()
                continue
            if ch in "#!":
                while self.pos < len(self.source) and self._peek() != "\n":
                    self._advance()
                continue
            if ch == "\n" or ch == ";":
                start = self._here()
                self._advance()
                if not last_was_newline:
                    yield Token(TokenKind.NEWLINE, "\\n", SourceSpan(start, self._here()))
                    last_was_newline = True
                continue
            tok = self._scan_token()
            last_was_newline = False
            emitted_any = True
            yield tok
        end = self._here()
        if emitted_any and not last_was_newline:
            yield Token(TokenKind.NEWLINE, "\\n", SourceSpan(end, end))
        yield Token(TokenKind.EOF, "<eof>", SourceSpan(end, end))

    def _scan_token(self) -> Token:
        start = self._here()
        ch = self._peek()
        if ch.isdigit():
            return self._scan_int(start)
        if ch.isalpha() or ch == "_":
            return self._scan_word(start)
        if ch in _SINGLE_CHAR:
            self._advance()
            return Token(_SINGLE_CHAR[ch], ch, SourceSpan(start, self._here()))
        if ch == "=":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.EQ, "==", SourceSpan(start, self._here()))
            return Token(TokenKind.ASSIGN, "=", SourceSpan(start, self._here()))
        if ch == "<":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.LE, "<=", SourceSpan(start, self._here()))
            return Token(TokenKind.LT, "<", SourceSpan(start, self._here()))
        if ch == ">":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token(TokenKind.GE, ">=", SourceSpan(start, self._here()))
            return Token(TokenKind.GT, ">", SourceSpan(start, self._here()))
        if ch == "/":
            self._advance()
            if self._peek() == "=":  # FORTRAN-style "not equal"
                self._advance()
                return Token(TokenKind.NE, "/=", SourceSpan(start, self._here()))
            return Token(TokenKind.SLASH, "/", SourceSpan(start, self._here()))
        raise LexError(f"unexpected character {ch!r}", SourceSpan.point(start.line, start.column))

    def _scan_int(self, start: SourcePos) -> Token:
        text = []
        while self._peek().isdigit():
            text.append(self._advance())
        if self._peek().isalpha():
            raise LexError(
                f"malformed integer literal {''.join(text) + self._peek()!r}",
                SourceSpan(start, self._here()),
            )
        s = "".join(text)
        return Token(TokenKind.INT, s, SourceSpan(start, self._here()), value=int(s))

    def _scan_word(self, start: SourcePos) -> Token:
        text = []
        while self._peek().isalnum() or self._peek() == "_":
            text.append(self._advance())
        word = "".join(text)
        kind = KEYWORDS.get(word.lower())
        if kind is not None:
            return Token(kind, word, SourceSpan(start, self._here()))
        return Token(TokenKind.IDENT, word, SourceSpan(start, self._here()), value=word)


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source`` completely, raising :class:`LexError` on bad input."""
    return list(Lexer(source).tokens())
