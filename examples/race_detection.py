"""Race detection across Parallel Sections — the paper's anomaly reports.

A parallel reduction kernel with two bugs the data-flow sets expose:

1. both worker sections accumulate into the same ``sum`` variable
   (an *actual* race: two concurrent definitions reach the join);
2. ``scale`` is written under a condition in one section and read after
   the join (the conservative *multiple-values* warning: either the old
   or the new value may arrive).

The example then shows the §6 contrast: adding a post/wait pair between
the workers removes the race report — the analysis understands that the
synchronization orders the writes.

Run:  python examples/race_detection.py
"""

from repro import analyze, parse_program
from repro.analysis import AnomalyKind, find_anomalies

RACY = """\
program reduction
  (1) sum = 0
  (1) scale = 1
  (2) parallel sections
    (3) section worker_lo
      (3) lo = 1 + 2 + 3
      (3) sum = sum + lo
    (4) section worker_hi
      (4) hi = 4 + 5 + 6
      (4) sum = sum + hi
      (4) if hi > 10 then
        (5) scale = 2
      endif
  (6) end parallel sections
  (6) mean = sum * scale
end program
"""

FIXED = """\
program reduction_fixed
  event lo_done
  (1) sum = 0
  (2) parallel sections
    (3) section worker_lo
      (3) lo = 1 + 2 + 3
      (3) sum = sum + lo
      (3) post(lo_done)
    (4) section worker_hi
      (4) hi = 4 + 5 + 6
      (4) wait(lo_done)
      (5) sum = sum + hi
  (6) end parallel sections
  (6) mean = sum
end program
"""


def report(source: str) -> None:
    program = parse_program(source)
    result = analyze(program)
    print(f"--- {program.name} ({result.system} equations) ---")
    anomalies = find_anomalies(result)
    if not anomalies:
        print("  no anomalies")
    for a in anomalies:
        severity = "RACE    " if a.kind is AnomalyKind.RACE else "warning "
        print(f"  {severity} {a.format()}")
    print()
    return anomalies


def main() -> None:
    racy = report(RACY)
    assert any(a.kind is AnomalyKind.RACE and a.var == "sum" for a in racy)
    assert any(a.kind is AnomalyKind.MULTIPLE and a.var == "scale" for a in racy)

    fixed = report(FIXED)
    assert not any(a.kind is AnomalyKind.RACE and a.var == "sum" for a in fixed), (
        "the post/wait pair orders the two accumulations: no race on sum"
    )
    print("post/wait ordering removed the race on 'sum' —")
    print("exactly the precision the Preserved-set machinery (paper §6) buys.")


if __name__ == "__main__":
    main()
