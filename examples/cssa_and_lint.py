"""Concurrent SSA + synchronization lint — the forward-looking pieces.

The paper's §7 names SSA translation of explicitly parallel programs as
future work; this library builds that form on top of the Parallel Flow
Graph: φ at sequential merges, ψ at parallel joins (a ψ whose arguments
carry distinct versions *is* the join anomaly), π at waits.

The synchronization linter turns the paper's own Figure 3 bug — the event
never cleared inside the loop, "this example would not execute properly"
— into a static diagnostic.

Run:  python examples/cssa_and_lint.py
"""

from repro import build_pfg, parse_program
from repro.analysis import SyncIssueKind, is_synchronization_correct, lint_synchronization
from repro.cssa import MergeKind, build_cssa, render_cssa
from repro.paper import programs

SOURCE = """\
program demo
  event ready
  (1) x = 1
  (2) parallel sections
    (3) section producer
      (3) x = 2
      (3) post(ready)
    (4) section consumer
      (4) wait(ready)
      (4) y = x
    (5) section rogue
      (5) x = 3
  (6) end parallel sections
  (6) z = x + y
end program
"""


def main() -> None:
    graph = build_pfg(parse_program(SOURCE))
    form = build_cssa(graph)
    print(render_cssa(graph, form))

    # The wait gets a π merging the fork copy with the posted version.
    pi = [m for m in form.merges.values() if m.kind is MergeKind.PI]
    assert len(pi) == 1 and pi[0].var == "x"
    print(f"π at the wait: {pi[0].format()}")

    # The join's ψ for x carries THREE versions (producer's, rogue's, and
    # the consumer-absorbed one) — the race, in SSA clothing.
    psis = {m.var: m for m in form.merges.values() if m.kind is MergeKind.PSI and m.node.name == "6"}
    x_psi = psis["x"]
    print(f"ψ at the join: {x_psi.format()}")
    assert len(x_psi.arg_versions()) >= 2

    print()

    # --- the lint, on the paper's own example -------------------------
    fig3 = programs.graph("fig3")
    issues = lint_synchronization(fig3)
    print("paper Figure 3 lint:")
    for issue in issues:
        print(f"  {issue.format()}")
    assert [i.kind for i in issues] == [SyncIssueKind.STALE_EVENT]
    assert not is_synchronization_correct(fig3)

    fixed = programs.graph("fig3c")
    assert is_synchronization_correct(fixed)
    print("fig3 with clear(ev) per iteration: lint-clean ✓")


if __name__ == "__main__":
    main()
