"""Parallel Do — the paper's §7 future work, implemented and analyzed.

"In the future, we propose to extend the data flow equations to handle
Parallel Do, another parallel construct specified by PCF FORTRAN."

This library models the construct as a conditionally-executed,
*self-concurrent* region: the trip count is unknown (possibly zero, like
``loop``), every body block may run concurrently with itself and its
siblings (distinct iterations), and each iteration gets its own
copy-in/copy-out environment plus a private, read-only index.

The example shows the three consequences:

1. reaching definitions at the merge include both the bypass (zero-trip)
   and the body definitions;
2. a variable *written* in the body is flagged as a cross-iteration race
   — even with a single static definition;
3. the interpreter demonstrates why: under copy-in/copy-out, iterations
   do NOT accumulate — each computes on the fork-time copy, and one
   iteration's write wins the merge.

Run:  python examples/parallel_do.py
"""

from collections import Counter

from repro import analyze, build_pfg, parse_program
from repro.analysis import AnomalyKind, find_anomalies
from repro.interp import RandomScheduler, check_soundness, run_program

SOURCE = """\
program stencil
  (1) total = 0
  (1) scale = 3
  (2) parallel do i
    (3) contribution = scale * i
    (3) total = total + contribution
  (4) end parallel do
  (4) answer = total
end program
"""


def main() -> None:
    program = parse_program(SOURCE)
    graph = build_pfg(program)
    result = analyze(program)

    print(f"equation system: {result.system}")
    total_defs = sorted(d.name for d in result.reaching("4", "total"))
    print(f"defs of 'total' reaching the merge: {total_defs}")
    assert total_defs == ["total1", "total3"], "zero-trip bypass keeps total1 alive"

    print("\nanomalies:")
    for anomaly in find_anomalies(result):
        print(f"  {anomaly.format()}")
    cross = [a for a in find_anomalies(result) if a.kind is AnomalyKind.CROSS_ITERATION]
    assert {a.var for a in cross} == {"contribution", "total"}

    # Dynamic confirmation: iterations never accumulate — copy-in gives
    # every iteration total==0, so the final answer is 3*i for whichever
    # iteration's write wins the merge (or 0 for a zero-trip run).
    outcomes = Counter()
    for seed in range(60):
        run = run_program(
            program, RandomScheduler(seed=seed, max_loop_iters=3), graph=graph
        )
        assert check_soundness(result, run) == []
        outcomes[run.value("answer")] += 1
    print(f"\nanswers over 60 random runs: {dict(sorted(outcomes.items()))}")
    assert set(outcomes) <= {0, 3, 6}  # 3*i for i in 0..2, or zero-trip 0
    assert len(outcomes) > 1

    print("\nThe race report and the scattered outcomes are the same fact —")
    print("one static, one dynamic.  An actual reduction needs ordered")
    print("combining (post/wait between iterations, or a sequential loop).")


if __name__ == "__main__":
    main()
