"""Quickstart: analyze an explicitly parallel program.

Parses a mini-PCF program with a ``Parallel Sections`` construct and
event synchronization, runs the appropriate reaching-definitions system
(the paper's §6 equations here, since the program synchronizes), and
prints the per-block sets, the ud-chains, and the anomaly report.

Run:  python examples/quickstart.py
"""

from repro import analyze, parse_program
from repro.analysis import compute_ud_chains, find_anomalies
from repro.tools.format import render_table

SOURCE = """\
program quickstart
  event ready
  (1) config = 10
  (1) result = 0
  (2) parallel sections
    (3) section producer
      (3) data = config * 2
      (3) post(ready)
    (4) section consumer
      (4) wait(ready)
      (4) result = data + 1
    (5) section logger
      (5) seen = config
  (6) end parallel sections
  (6) total = result + seen
end program
"""


def main() -> None:
    program = parse_program(SOURCE)
    result = analyze(program)  # picks §2 / §5 / §6 automatically

    print(f"equation system : {result.system}")
    print(f"solver          : {result.stats.order} "
          f"({result.stats.passes} passes, converged={result.stats.converged})")
    print()

    order = [n.name for n in result.graph.document_order()]
    cols = ["Gen", "Kill", "ParallelKill", "In", "Out"]
    rows = {name: {c: result.set_names(c, name) for c in cols} for name in order}
    print(render_table(rows, cols, order, title="reaching definitions"))

    print("ud-chains (which definitions can each read observe):")
    print(compute_ud_chains(result).format())
    print()

    # The wait orders the producer's write before the consumer's read:
    reaching_data = {d.name for d in result.reaching("4", "data")}
    print(f"defs of 'data' reaching the consumer: {sorted(reaching_data)}")
    assert reaching_data == {"data3"}, "synchronization fully determines the value"

    anomalies = find_anomalies(result)
    print(f"anomalies: {[a.format() for a in anomalies] or 'none'}")


if __name__ == "__main__":
    main()
