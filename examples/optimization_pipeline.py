"""A scalar-optimization pass pipeline over a parallel program.

The paper's point is that reaching definitions across parallel constructs
enable "rigorous scalar optimization on parallel programs".  This example
runs four classical clients over one program and prints the combined
optimization report:

* constant propagation  — values provable across the construct;
* copy propagation      — reads replaceable by their source variable;
* common subexpressions — recomputations that can reuse earlier results;
* dead code elimination — definitions killed by always-executing
  sections and never observed.

Run:  python examples/optimization_pipeline.py
"""

from repro import analyze, parse_program
from repro.analysis import (
    find_common_subexpressions,
    find_copy_propagations,
    find_dead_code,
    propagate_constants,
)

SOURCE = """\
program kernel
  (1) n = 8
  (1) stride = n * 4
  (1) unused = 99
  (2) parallel sections
    (3) section left
      (3) base_l = stride * 2
      (3) acc_l = base_l + n
    (4) section right
      (4) base_r = stride * 2
      (4) alias = n
      (4) acc_r = alias + 1
    (5) section reset
      (5) unused = 0
  (6) end parallel sections
  (6) copy = acc_l
  (7) total = copy + acc_r
end program
"""


def main() -> None:
    program = parse_program(SOURCE)
    result = analyze(program)
    print(f"analysis: {result.system} equations, {result.stats.passes} passes\n")

    constants = propagate_constants(result)
    print("constant definitions:")
    for d, value in sorted(constants.constant_defs().items(), key=lambda kv: kv[0].index):
        print(f"  {d.name} = {value}")
    assert constants.value_of(result.graph.defs.by_name("acc_l3")) == 72

    print("\ncopy propagations:")
    copies = find_copy_propagations(result)
    for c in copies:
        print(f"  {c.format()}")
    assert any(c.source == "n" for c in copies)          # alias = n
    assert any(c.source == "acc_l" for c in copies)      # copy = acc_l

    print("\ncommon subexpressions:")
    cses = find_common_subexpressions(result)
    for c in cses:
        print(f"  {c.format()}")
    # NOTE: base_l and base_r compute the same value but run concurrently,
    # so no reuse is reported — ordering matters, not just equality.
    assert cses == []

    print("\ndead code:")
    dce = find_dead_code(result)
    print(f"  {dce.format()}")
    # 'unused = 99' dies because section reset ALWAYS overwrites it —
    # provable only with the parallel-merge kill rule.
    assert {d.name for d in dce.dead} == {"unused1"}

    print("\nAll reports derive from one reaching-definitions fixpoint.")


if __name__ == "__main__":
    main()
