"""Validate the static analysis against executions — the reproduction's
dynamic oracle, as a user-facing workflow.

The interpreter implements the copy-in/copy-out semantics the paper
assumes (§3) and records, for every variable read, which definition's
value was observed.  Soundness means: every observation lies inside the
static ud-chain.  This script checks that over

* every schedule of a small racy program (exhaustive exploration), and
* many random schedules of the paper's Figure 3 — in its corrected form
  (event cleared per iteration) *and* in the paper's original broken form,
  reproducing the paper's own caveat that the original "would not execute
  properly".

Run:  python examples/dynamic_validation.py
"""

from repro import analyze, build_pfg, parse_program
from repro.interp import (
    ExhaustiveExplorer,
    RandomScheduler,
    check_soundness,
    run_program,
)
from repro.paper import programs

RACY = """\
program racy
  (1) x = 0
  parallel sections
    section A
      (2) x = x + 1
    section B
      (3) x = x * 10
  (4) end parallel sections
end program
"""


def exhaustive_check() -> None:
    program = parse_program(RACY)
    graph = build_pfg(program)
    result = analyze(program)
    outcomes = set()
    n_runs = 0
    violations = []

    def once(scheduler):
        nonlocal n_runs
        run = run_program(program, scheduler, graph=graph)
        outcomes.add(run.value("x"))
        violations.extend(check_soundness(result, run))
        n_runs += 1

    list(ExhaustiveExplorer(max_runs=500).schedules(once))
    print(f"exhaustive: {n_runs} schedules, final x ∈ {sorted(outcomes)}")
    print(f"  soundness violations: {len(violations)}")
    assert violations == []
    # Copy-in/copy-out (paper §3): each section updates its OWN copy of
    # x=0, so A's copy becomes 1 and B's becomes 0; whichever write is
    # later wins the join merge.  (Under interleaved shared memory the
    # outcomes would be {1, 10, 11} — a different model than the paper's.)
    assert outcomes == {0, 1}


def fig3_check(key: str, iters: int, expect_violations: bool) -> None:
    program = programs.program(key)
    graph = build_pfg(program)
    result = analyze(program)
    found = []
    for seed in range(80):
        run = run_program(
            program, RandomScheduler(seed=seed, max_loop_iters=iters), graph=graph
        )
        found.extend(check_soundness(result, run))
    status = f"{len(found)} observation(s) outside the static sets"
    print(f"{key} (≤{iters} iterations): {status}")
    if expect_violations:
        assert found, "the paper's stale-event caveat should be observable"
        example = found[0]
        print(f"  e.g. {example.format()}")
        print("  (paper §3: 'this example would not execute properly' — the")
        print("   stale event lets the wait pass before the post, violating")
        print("   the §6 correctness assumption)")
    else:
        assert found == []


def main() -> None:
    exhaustive_check()
    print()
    fig3_check("fig3c", iters=3, expect_violations=False)
    fig3_check("fig3", iters=1, expect_violations=False)
    fig3_check("fig3", iters=3, expect_violations=True)


if __name__ == "__main__":
    main()
