"""The paper's opening motivation (§1, Figure 1), end to end.

Two programs with "very similar control flow structures":

* sequential: ``if c then j = j + 1 else k = 5`` inside a loop —
  ``j`` is *not* an induction variable (the increment is conditional),
  and ``k`` is not a constant after the conditional;
* parallel: section A does ``j = j + 1``, section B does ``k = 5`` —
  both sections always execute, so ``j`` *is* an induction variable and
  ``k`` *is* 5 after the construct.

"...but this could not be automatically detected without adequate
dataflow information."  This script detects exactly that, automatically,
from the paper's equations.

Run:  python examples/induction_variables.py
"""

from repro import analyze
from repro.analysis import find_induction_variables, propagate_constants
from repro.paper import programs


def inspect(key: str) -> None:
    program = programs.program(key)
    result = analyze(program)
    constants = propagate_constants(result)
    ivs = find_induction_variables(result)

    print(f"--- {key} ({result.system} equations) ---")
    j_defs = sorted(d.name for d in result.reaching("6", "j"))
    k_defs = sorted(d.name for d in result.reaching("6", "k"))
    print(f"  defs of j reaching block (6): {j_defs}")
    print(f"  defs of k reaching block (6): {k_defs}")
    print(f"  k at block (6) is constant  : {constants.constant_at('6', 'k')}")
    if ivs:
        for iv in ivs:
            print(f"  {iv.format()}")
            print("    -> strength reduction / dependence-analysis candidate")
    else:
        print("  no induction variables")
    print()
    return ivs, constants


def main() -> None:
    seq_ivs, seq_consts = inspect("fig1a")
    par_ivs, par_consts = inspect("fig1b")

    assert seq_ivs == [] and seq_consts.constant_at("6", "k") is None
    assert [iv.var for iv in par_ivs] == ["j"]
    assert par_consts.constant_at("6", "k") == 5

    print("The sequential equations cannot justify either optimization;")
    print("the parallel-merge kill rule (ACCKill, paper §5) justifies both.")


if __name__ == "__main__":
    main()
